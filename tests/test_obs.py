"""Tests for repro.obs: metrics registry, span tracing, manifests."""

import json
import os

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, chrome_trace, read_spans
from repro.parallel import parallel_map


@pytest.fixture(autouse=True)
def obs_off_after(monkeypatch):
    """Every test starts and ends with observability off and clean."""
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
    obs.configure(mode=obs.MODE_OFF)
    obs.reset()
    yield
    obs.configure(mode=obs.MODE_OFF)
    obs.reset()


# ---------------------------------------------------------------------------
# metrics registry


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.counter("hits", 2.5)
        assert reg.snapshot()["counters"]["hits"] == 3.5

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("loss", 0.9)
        reg.gauge("loss", 0.4)
        assert reg.snapshot()["gauges"]["loss"] == 0.4

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        for v in (0.5, 3.0, 3.0, 1e9):
            reg.histogram("ms", v, buckets=(1.0, 5.0))
        hist = reg.snapshot()["histograms"]["ms"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(1e9 + 6.5)
        assert hist["min"] == 0.5 and hist["max"] == 1e9
        # counts: <=1.0, <=5.0, overflow
        assert hist["counts"] == [1, 2, 1]

    def test_snapshot_is_detached_and_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("n")
        snap = reg.snapshot()
        reg.counter("n")
        assert snap["counters"]["n"] == 1.0
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_merge_snapshot_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", 2)
        b.counter("n", 3)
        a.histogram("ms", 1.0, buckets=(2.0,))
        b.histogram("ms", 5.0, buckets=(2.0,))
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 5.0
        assert snap["histograms"]["ms"]["count"] == 2
        assert snap["histograms"]["ms"]["min"] == 1.0
        assert snap["histograms"]["ms"]["max"] == 5.0

    def test_bucket_mismatch_counted_not_silent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("ms", 1.0, buckets=(2.0, 4.0))
        b.histogram("ms", 1.0, buckets=(3.0,))
        b.histogram("ok", 1.0, buckets=(2.0,))
        a.histogram("ok", 5.0, buckets=(2.0,))
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        # the incompatible snapshot was refused without touching local data...
        assert snap["histograms"]["ms"]["count"] == 1
        assert snap["histograms"]["ms"]["buckets"] == [2.0, 4.0]
        # ...and the refusal is published instead of silently swallowed
        assert snap["counters"]["obs.merge.bucket_mismatch"] == 1.0
        # compatible histograms in the same snapshot still merged
        assert snap["histograms"]["ok"]["count"] == 2

    def test_histogram_merge_snapshot_returns_false_on_mismatch(self):
        from repro.obs.metrics import Histogram

        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)
        other = Histogram(buckets=(9.0,))
        other.observe(3.0)
        assert h.merge_snapshot(other.snapshot()) is False
        assert h.count == 1 and h.max == 0.5
        twin = Histogram(buckets=(1.0, 2.0))
        twin.observe(1.5)
        assert h.merge_snapshot(twin.snapshot()) is True
        assert h.count == 2 and h.max == 1.5

    def test_worker_gauges_merge_under_pid_suffix(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("train.loss", 0.1)
        worker.gauge("train.loss", 0.9)
        worker.gauge("obs.rss.peak_mb", 512.0)
        parent.merge_snapshot(worker.snapshot(), gauge_pid=4242)
        gauges = parent.snapshot()["gauges"]
        # local name stays last-write-wins; the worker's value arrives
        # under a .pid suffix instead of colliding or being dropped
        assert gauges["train.loss"] == 0.1
        assert gauges["train.loss.pid4242"] == 0.9
        assert gauges["obs.rss.peak_mb.pid4242"] == 512.0

    def test_gauges_without_pid_stay_local_only(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.gauge("g", 1.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot()["gauges"] == {}


# ---------------------------------------------------------------------------
# module facade / disabled path


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", attr=1) is NULL_SPAN
        with obs.span("x") as sp:
            sp.set(a=1)
        assert sp.duration_s == 0.0

    def test_metrics_are_dropped_when_off(self):
        obs.counter("n")
        obs.gauge("g", 1.0)
        obs.histogram("h", 2.0)
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {} and snap["histograms"] == {}

    def test_write_manifest_returns_none_when_off(self, tmp_path):
        assert obs.write_manifest(kind="train", directory=tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_force_span_still_measures(self):
        with obs.span("bench.x", force=True) as sp:
            pass
        assert sp is not NULL_SPAN
        assert sp.duration_s >= 0.0

    def test_mode_parsing_from_env(self, monkeypatch):
        for raw, want in (
            ("", obs.MODE_OFF), ("0", obs.MODE_OFF), ("off", obs.MODE_OFF),
            ("1", obs.MODE_METRICS), ("metrics", obs.MODE_METRICS),
            ("trace", obs.MODE_TRACE), ("2", obs.MODE_TRACE),
        ):
            monkeypatch.setenv(obs.OBS_ENV, raw)
            assert obs.configure() == want
        with pytest.raises(ValueError):
            obs.configure(mode="verbose")


# ---------------------------------------------------------------------------
# span tracing


class TestSpans:
    def test_nesting_depth_and_parent(self, tmp_path):
        obs.configure(mode=obs.MODE_TRACE, directory=tmp_path)
        with obs.span("outer", a=1):
            with obs.span("inner"):
                with obs.span("leaf"):
                    pass
        spans = {s["name"]: s for s in obs.read_spans(tmp_path)}
        assert spans["outer"]["depth"] == 0 and spans["outer"]["parent"] is None
        assert spans["inner"]["depth"] == 1 and spans["inner"]["parent"] == "outer"
        assert spans["leaf"]["depth"] == 2 and spans["leaf"]["parent"] == "inner"
        assert spans["outer"]["attrs"] == {"a": 1}
        assert spans["outer"]["pid"] == os.getpid()

    def test_set_attaches_attrs_mid_span(self, tmp_path):
        obs.configure(mode=obs.MODE_TRACE, directory=tmp_path)
        with obs.span("epoch") as sp:
            sp.set(loss=0.25)
        (span,) = obs.read_spans(tmp_path)
        assert span["attrs"]["loss"] == 0.25
        assert span["dur"] >= 0.0

    def test_read_spans_skips_corrupt_lines(self, tmp_path):
        obs.configure(mode=obs.MODE_TRACE, directory=tmp_path)
        with obs.span("good"):
            pass
        spill = tmp_path / f"spans-{os.getpid()}.jsonl"
        with spill.open("a") as fh:
            fh.write("{truncated\n")
        assert [s["name"] for s in read_spans(tmp_path)] == ["good"]

    def test_chrome_trace_schema(self, tmp_path):
        obs.configure(mode=obs.MODE_TRACE, directory=tmp_path)
        with obs.span("train.fit"):
            with obs.span("train.epoch", epoch=0):
                pass
        doc = obs.chrome_trace(tmp_path)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
            assert event["cat"] == "train"
            assert event["ts"] >= 0.0  # rebased to the earliest span
        out = obs.write_chrome_trace(tmp_path / "trace.json", tmp_path)
        assert json.loads(out.read_text())["traceEvents"]

    def test_chrome_trace_empty(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


def _traced_item(n: int) -> int:
    with obs.span("item.work", n=n):
        obs.counter("items.done")
    return n * n


class TestMultiprocessingMerge:
    def test_worker_spans_merge_into_parent_timeline(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_DIR_ENV, str(tmp_path))  # spawn-safe
        monkeypatch.setenv(obs.OBS_ENV, "trace")
        obs.configure(mode=obs.MODE_TRACE, directory=tmp_path)
        result = parallel_map(_traced_item, list(range(6)), processes=2)
        obs.flush()
        assert result == [n * n for n in range(6)]
        spans = obs.read_spans(tmp_path)
        names = {s["name"] for s in spans}
        assert "parallel.map" in names
        # every item ran inside a parallel.item span regardless of which
        # process executed it, and indices cover the full work list
        indices = sorted(
            s["attrs"]["index"] for s in spans if s["name"] == "parallel.item"
        )
        assert indices == list(range(6))
        merged = obs.merged_snapshot()
        assert merged["counters"].get("items.done") == 6.0

    def test_serial_fallback_still_traces(self, tmp_path):
        obs.configure(mode=obs.MODE_TRACE, directory=tmp_path)
        result = parallel_map(_traced_item, [1, 2, 3], processes=1)
        obs.flush()
        assert result == [1, 4, 9]
        spans = obs.read_spans(tmp_path)
        (map_span,) = [s for s in spans if s["name"] == "parallel.map"]
        assert map_span["attrs"]["pool"] == "serial"

    def test_worker_gauges_survive_via_pid_suffix(self, tmp_path):
        obs.configure(mode=obs.MODE_METRICS, directory=tmp_path)
        obs.gauge("train.loss", 0.25)
        # simulate a dead worker's spill (pid encoded in the filename)
        worker = MetricsRegistry()
        worker.gauge("obs.rss.peak_mb", 777.0)
        worker.counter("items.done", 2)
        (tmp_path / "metrics-99999.json").write_text(worker.to_json(), encoding="utf-8")
        merged = obs.merged_snapshot()
        assert merged["counters"]["items.done"] == 2.0
        assert merged["gauges"]["train.loss"] == 0.25  # local, untouched
        assert merged["gauges"]["obs.rss.peak_mb.pid99999"] == 777.0

    def test_metrics_mode_flush_spills_metrics(self, tmp_path):
        obs.configure(mode=obs.MODE_METRICS, directory=tmp_path)
        obs.counter("n", 3)
        obs.flush()
        spill = tmp_path / f"metrics-{os.getpid()}.json"
        assert spill.exists()
        assert json.loads(spill.read_text())["counters"]["n"] == 3.0


# ---------------------------------------------------------------------------
# manifests


class TestManifest:
    def test_write_and_latest_roundtrip(self, tmp_path):
        obs.configure(mode=obs.MODE_METRICS, directory=tmp_path)
        obs.counter("train.epochs", 4)
        path = obs.write_manifest(
            kind="train",
            config={"hidden": 8, "lr": 1e-3},
            seed=7,
            history={"train_loss": [1.0, 0.5]},
            directory=tmp_path,
        )
        assert path is not None and path.exists()
        manifest = obs.latest_manifest(tmp_path)
        assert manifest["kind"] == "train"
        assert manifest["seed"] == 7
        assert manifest["config"]["hidden"] == 8
        assert manifest["metrics"]["counters"]["train.epochs"] == 4.0
        assert manifest["history"]["train_loss"] == [1.0, 0.5]
        assert set(manifest["kernel_paths"]) == {
            "arena", "backend", "backend_resolved", "fused_kernels",
            "batched_cc", "obs_sample_hz", "sanitize", "vectorized_radio",
        }
        assert manifest["kernel_paths"]["backend"] == "numpy"
        assert manifest["kernel_paths"]["backend_resolved"] == "numpy"
        assert manifest["tuning"]["fold_chunk_rows"] >= 1

    def test_config_hash_stable_and_sensitive(self):
        base = {"a": 1, "b": [1, 2]}
        assert obs.config_hash(base) == obs.config_hash({"b": [1, 2], "a": 1})
        assert obs.config_hash(base) != obs.config_hash({**base, "a": 2})
        assert obs.config_hash(None) is None

    def test_git_sha_resolves_in_this_repo(self):
        sha = obs.git_sha()
        assert sha is None or (len(sha) == 40 and all(c in "0123456789abcdef" for c in sha))

    def test_trainer_fit_writes_manifest(self, tmp_path):
        import numpy as np

        from repro.core import DeepConfig, Prism5GPredictor
        from repro.data import SubDatasetSpec, build_subdataset, random_split

        obs.configure(mode=obs.MODE_METRICS, directory=tmp_path)
        dataset = build_subdataset(
            SubDatasetSpec("OpY", "driving", "long"),
            n_traces=2, samples_per_trace=60, cache=None, processes=1,
        )
        train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
        Prism5GPredictor(DeepConfig(hidden=8, max_epochs=2, patience=2)).fit(train, val)
        manifest = obs.latest_manifest(tmp_path)
        assert manifest["kind"] == "train"
        assert manifest["history"]["epochs_run"] >= 1
        assert np.isfinite(manifest["history"]["best_val_loss"])
        assert manifest["metrics"]["counters"]["train.epochs"] >= 1
