"""Experiment pipeline: typed config, hashing, stage skip/resume."""

import json

import numpy as np
import pytest

from repro import obs, runtime
from repro.core.predictors import TABLE4_LINEUP, registered_predictors
from repro.pipeline import (
    EXPERIMENT_SCHEMA,
    DEFAULT_STAGES,
    ExperimentConfig,
    run_dir_for,
    run_experiment,
)

TINY = dict(
    name="tiny",
    n_traces=2,
    samples_per_trace=60,
    predictors=("Prophet", "Prism5G"),
    deep={"hidden": 8, "max_epochs": 2, "patience": 2},
)


class TestExperimentConfig:
    def test_json_round_trip(self):
        config = ExperimentConfig(**TINY)
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        assert clone.hash() == config.hash()

    def test_save_load_round_trip(self, tmp_path):
        config = ExperimentConfig(**TINY)
        path = config.save(tmp_path / "exp.json")
        assert ExperimentConfig.load(path) == config

    def test_hash_is_stable(self):
        # equal configs hash equally regardless of construction order
        a = ExperimentConfig(seed=3, operator="OpX", mobility="walking")
        b = ExperimentConfig(mobility="walking", operator="OpX", seed=3)
        assert a.hash() == b.hash()
        assert len(a.hash()) == 16

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 1},
            {"operator": "OpX"},
            {"mobility": "walking"},
            {"timescale": "short"},
            {"n_traces": 9},
            {"split": "trace"},
            {"predictors": ("Prophet",)},
            {"deep": {"hidden": 99}},
            {"runtime": {"fused_kernels": False}},
        ],
    )
    def test_every_field_feeds_the_hash(self, override):
        assert ExperimentConfig(**override).hash() != ExperimentConfig().hash()

    def test_schema_feeds_the_hash(self):
        config = ExperimentConfig()
        assert (
            runtime.canonical_hash(config.to_dict(), schema=EXPERIMENT_SCHEMA)
            == config.hash()
        )
        assert runtime.canonical_hash(config.to_dict()) != config.hash()

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="registered predictors"):
            ExperimentConfig(predictors=("Oracle9000",))

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment config key"):
            ExperimentConfig.from_dict({"name": "x", "optimizer": "sgd"})

    def test_unknown_runtime_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime flag"):
            ExperimentConfig(runtime={"turbo_mode": True})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("operator", "OpQ"),
            ("mobility", "flying"),
            ("timescale", "medium"),
            ("split", "kfold"),
            ("source", "pcap"),
        ],
    )
    def test_invalid_enums_rejected(self, field, value):
        with pytest.raises(ValueError):
            ExperimentConfig(**{field: value})

    def test_empty_predictors_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ExperimentConfig(predictors=())

    def test_partial_runtime_filled_with_defaults(self):
        config = ExperimentConfig(runtime={"fused_kernels": False})
        assert config.runtime == {
            "arena": True,
            "backend": runtime.backend_name(),
            "batched_cc": True,
            "fused_kernels": False,
            "obs_sample_hz": "0",
            "sanitize": "0",
            "vectorized_radio": True,
        }

    def test_runtime_backend_string_passes_through(self):
        config = ExperimentConfig(runtime={"backend": "  NumPy "})
        assert config.runtime["backend"] == "numpy"

    def test_run_dir_embeds_name_and_hash(self):
        config = ExperimentConfig(name="My Experiment!")
        path = run_dir_for(config)
        assert path.name == f"my_experiment-{config.hash()}"


class TestRegistry:
    def test_table4_lineup_fully_registered(self):
        assert set(TABLE4_LINEUP) <= set(registered_predictors())

    def test_ablations_registered(self):
        names = registered_predictors()
        assert "Prism5G (no state)" in names
        assert "Prism5G (no fusion)" in names

    def test_registry_sorted(self):
        names = registered_predictors()
        assert list(names) == sorted(names)


@pytest.fixture(scope="module")
def tiny_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("exp") / "run"
    config = ExperimentConfig(**TINY)
    result = run_experiment(config, out_dir=run_dir)
    return config, run_dir, result


class TestRunExperiment:
    def test_first_run_completes_all_stages(self, tiny_run):
        _, _, result = tiny_run
        assert [s.stage for s in result.stages] == [s.name for s in DEFAULT_STAGES]
        assert all(s.status == "completed" for s in result.stages)
        assert set(result.rmse) == {"Prophet", "Prism5G"}
        assert all(np.isfinite(v) for v in result.rmse.values())

    def test_artifacts_on_disk(self, tiny_run):
        config, run_dir, result = tiny_run
        assert (run_dir / "experiment.json").exists()
        assert (run_dir / "dataset.npz").exists()
        assert (run_dir / "checkpoints" / "prophet.pkl").exists()
        assert (run_dir / "checkpoints" / "prism5g.npz").exists()
        assert (run_dir / "result.json").exists()
        summary = json.loads((run_dir / "run.json").read_text())
        assert summary["experiment_hash"] == config.hash()
        payload = json.loads((run_dir / "result.json").read_text())
        assert payload["experiment_hash"] == config.hash()
        assert payload["rmse"] == result.rmse

    def test_stage_markers_carry_hash(self, tiny_run):
        config, run_dir, _ = tiny_run
        for stage in DEFAULT_STAGES:
            marker = json.loads((run_dir / "stages" / f"{stage.name}.json").read_text())
            assert marker["experiment_hash"] == config.hash()

    def test_second_run_all_skipped_same_rmse(self, tiny_run):
        config, run_dir, first = tiny_run
        second = run_experiment(config, out_dir=run_dir)
        assert second.all_skipped
        assert second.rmse == first.rmse

    def test_force_reruns_everything(self, tiny_run):
        config, run_dir, first = tiny_run
        forced = run_experiment(config, out_dir=run_dir, force=True)
        assert all(s.status == "completed" for s in forced.stages)
        assert forced.rmse == pytest.approx(first.rmse)

    def test_resume_after_kill_between_stages(self, tiny_run):
        config, run_dir, first = tiny_run
        (run_dir / "stages" / "evaluate.json").unlink()
        (run_dir / "result.json").unlink()
        resumed = run_experiment(config, out_dir=run_dir)
        statuses = {s.stage: s.status for s in resumed.stages}
        assert statuses == {
            "synthesize": "skipped",
            "build_dataset": "skipped",
            "train": "skipped",
            "evaluate": "completed",
        }
        # predictions come from the restored checkpoints: bit-identical
        assert resumed.rmse == first.rmse

    def test_resume_after_kill_mid_train(self, tiny_run):
        config, run_dir, first = tiny_run
        for name in ("train", "evaluate"):
            (run_dir / "stages" / f"{name}.json").unlink()
        (run_dir / "result.json").unlink()
        (run_dir / "checkpoints" / "prism5g.npz").unlink()
        resumed = run_experiment(config, out_dir=run_dir)
        train_detail = next(s.detail for s in resumed.stages if s.stage == "train")
        assert train_detail["Prophet"]["status"] == "resumed"
        assert train_detail["Prism5G"]["status"] == "fitted"
        assert resumed.rmse == pytest.approx(first.rmse)

    def test_marker_from_other_config_does_not_count(self, tiny_run, tmp_path):
        config, run_dir, _ = tiny_run
        other = ExperimentConfig(**{**TINY, "seed": 7})
        # same directory, different config hash: nothing may be skipped
        result = run_experiment(other, out_dir=run_dir)
        assert all(s.status == "completed" for s in result.stages)

    def test_runtime_flags_restored_after_run(self, tmp_path):
        before = runtime.flags()
        config = ExperimentConfig(
            **{**TINY, "predictors": ("Prophet",), "runtime": {"fused_kernels": False}}
        )
        run_experiment(config, out_dir=tmp_path / "flags-run")
        assert runtime.flags() == before

    def test_manifests_carry_experiment_hash(self, tmp_path):
        config = ExperimentConfig(**{**TINY, "predictors": ("Prophet",)})
        obs_dir = tmp_path / "obs"
        obs.configure(mode=obs.MODE_METRICS, directory=obs_dir)
        try:
            run_experiment(config, out_dir=tmp_path / "obs-run")
            manifest = obs.latest_manifest(obs_dir)
        finally:
            obs.configure(mode=obs.MODE_OFF)
            obs.reset()
        assert manifest is not None
        assert manifest["experiment_hash"] == config.hash()
