"""Continuous telemetry: quantile interpolation, ring buffer, sampler."""

import json
import threading

import pytest

from repro import obs, runtime
from repro.obs.metrics import Histogram
from repro.obs.timeseries import (
    RingBuffer,
    SampleClock,
    TimeSeriesSampler,
    bucket_quantiles,
    read_series,
)


@pytest.fixture(autouse=True)
def obs_off_after(monkeypatch):
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
    obs.configure(mode=obs.MODE_OFF)
    obs.reset()
    yield
    runtime.configure(obs_sample_hz=0)
    obs.configure(mode=obs.MODE_OFF)
    obs.reset()


# ---------------------------------------------------------------------------
# bucket-quantile interpolation


class TestBucketQuantiles:
    FIXTURE = {
        "buckets": [10.0, 20.0, 30.0],
        "counts": [10, 10, 10, 0],
        "count": 30,
        "sum": 450.0,
        "min": 0.0,
        "max": 30.0,
    }

    def test_exact_interpolated_values(self):
        qs = bucket_quantiles(self.FIXTURE)
        assert qs == {"p50": 15.0, "p95": 28.5, "p99": 29.7}

    def test_custom_quantile_keys(self):
        qs = bucket_quantiles(self.FIXTURE, qs=(0.1, 0.25))
        assert set(qs) == {"p10", "p25"}
        # rank 3 of 30 sits 30% into the first bucket [min=0, 10]
        assert qs["p10"] == pytest.approx(3.0)

    def test_empty_histogram_is_none(self):
        assert bucket_quantiles(Histogram().snapshot()) is None
        assert bucket_quantiles({"count": 0}) is None

    def test_results_clamped_to_observed_range(self):
        # everything lands in the overflow bucket: edges come from min/max
        hist = Histogram(buckets=(1.0,))
        for v in (5.0, 6.0, 7.0):
            hist.observe(v)
        qs = bucket_quantiles(hist.snapshot())
        for value in qs.values():
            assert 5.0 <= value <= 7.0

    def test_monotone_in_q_on_random_fills(self):
        import numpy as np

        rng = np.random.default_rng(42)
        for _ in range(5):
            hist = Histogram(buckets=(0.5, 1.0, 2.0, 4.0))
            for v in rng.exponential(1.5, size=200):
                hist.observe(float(v))
            snap = hist.snapshot()
            qs = bucket_quantiles(snap)
            assert qs["p50"] <= qs["p95"] <= qs["p99"]
            assert snap["min"] <= qs["p50"]
            assert qs["p99"] <= snap["max"]


# ---------------------------------------------------------------------------
# ring buffer


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBuffer(0)

    def test_wraparound_keeps_newest_oldest_first(self):
        ring = RingBuffer(4)
        overwrites = [ring.append({"i": i}) for i in range(10)]
        assert overwrites == [False] * 4 + [True] * 6
        assert len(ring) == 4
        assert ring.appended == 10
        assert ring.dropped == 6
        assert [row["i"] for row in ring.items()] == [6, 7, 8, 9]

    def test_partial_fill_has_no_drops(self):
        ring = RingBuffer(8)
        for i in range(3):
            ring.append({"i": i})
        assert len(ring) == 3
        assert ring.dropped == 0
        assert [row["i"] for row in ring.items()] == [0, 1, 2]


# ---------------------------------------------------------------------------
# sampler rows under a fixed clock


class _ScriptedClock(SampleClock):
    """Non-blocking clock: scripted tick times, wait() never sleeps."""

    def __init__(self, ticks):
        super().__init__()
        self.ticks = list(ticks)

    def now(self):
        return self.ticks.pop(0) if self.ticks else 999.0

    def wait(self, timeout):
        return not self.ticks  # stop once the script runs out


class TestTimeSeriesSampler:
    def _source(self):
        hist = Histogram(buckets=(10.0, 20.0, 30.0))
        for v in (5.0,) * 10 + (15.0,) * 10 + (30.0,) * 10:
            hist.observe(v)
        return {
            "counters": {"items.done": 7.0},
            "gauges": {"train.loss": 0.5},
            "histograms": {"step.ms": hist.snapshot()},
        }

    def test_rows_are_deterministic_under_fixed_clock(self, tmp_path):
        sampler = TimeSeriesSampler(
            interval_s=0.5, source=self._source, directory=tmp_path, capacity=3
        )
        sampler.push_label("train")
        rows = [sampler.sample_once(t=float(t)) for t in range(1, 6)]
        assert [r["t"] for r in rows] == [1.0, 2.0, 3.0, 4.0, 5.0]
        row = rows[0]
        assert row["window"] == "train"
        assert row["counters"] == {"items.done": 7.0}
        assert row["gauges"] == {"train.loss": 0.5}
        assert row["quantiles"]["step.ms"] == {"p50": 15.0, "p95": 28.5, "p99": 29.7}
        # wraparound: ring keeps newest 3, spill keeps all 5
        assert [r["t"] for r in sampler.ring.items()] == [3.0, 4.0, 5.0]
        assert sampler.ring.dropped == 2
        sampler.flush()
        assert sampler.spilled_rows == 5
        assert [r["t"] for r in read_series(tmp_path)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_window_labels_nest_and_join(self):
        sampler = TimeSeriesSampler(interval_s=1.0, source=dict)
        sampler.push_label("train")
        sampler.push_label("epoch")
        assert sampler.sample_once(t=0.0)["window"] == "train;epoch"
        sampler.pop_label("epoch")
        assert sampler.sample_once(t=1.0)["window"] == "train"

    def test_scripted_clock_drives_loop_to_completion(self, tmp_path):
        clock = _ScriptedClock([0.1, 0.2, 0.3])
        sampler = TimeSeriesSampler(
            interval_s=0.01, source=self._source, directory=tmp_path, clock=clock
        )
        sampler.start()
        sampler.stop()
        rows = read_series(tmp_path)
        assert len(rows) >= 1  # at least the final stop() row
        assert all(r["pid"] == sampler.pid for r in rows)


# ---------------------------------------------------------------------------
# cross-process series merge


class TestReadSeries:
    def test_merges_pids_sorted_and_skips_corrupt_lines(self, tmp_path):
        (tmp_path / "series-2.jsonl").write_text(
            json.dumps({"t": 1.0, "pid": 2}) + "\n"
            + "{corrupt json\n"
            + json.dumps({"t": 3.0, "pid": 2}) + "\n",
            encoding="utf-8",
        )
        (tmp_path / "series-1.jsonl").write_text(
            json.dumps({"t": 1.0, "pid": 1}) + "\n"
            + json.dumps({"t": 2.0, "pid": 1}) + "\n",
            encoding="utf-8",
        )
        rows = read_series(tmp_path)
        assert [(r["t"], r["pid"]) for r in rows] == [
            (1.0, 1),
            (1.0, 2),
            (2.0, 1),
            (3.0, 2),
        ]

    def test_missing_directory_is_empty(self, tmp_path):
        assert read_series(tmp_path / "nope") == []


# ---------------------------------------------------------------------------
# facade lifecycle: sample_window refcounting


def _sampler_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-obs-sampler")
    ]


class TestSampleWindowLifecycle:
    def test_disabled_path_starts_no_thread(self):
        obs.configure(mode=obs.MODE_METRICS)  # hz stays 0
        assert not obs.sampling_enabled()
        with obs.sample_window("train"):
            assert obs.current_sampler() is None
            assert not _sampler_threads()

    def test_obs_off_starts_no_thread_even_with_hz(self):
        runtime.configure(obs_sample_hz=50)
        assert not obs.sampling_enabled()
        with obs.sample_window("train"):
            assert obs.current_sampler() is None

    def test_refcounted_windows_share_one_sampler(self, tmp_path):
        runtime.configure(obs_sample_hz=200)
        obs.configure(mode=obs.MODE_METRICS, directory=tmp_path)
        assert obs.sampling_enabled()
        with obs.sample_window("outer"):
            outer = obs.current_sampler()
            assert outer is not None
            assert _sampler_threads()
            with obs.sample_window("inner"):
                assert obs.current_sampler() is outer  # nested: no new thread
                threading.Event().wait(0.05)  # let the 200 Hz thread tick
            assert obs.current_sampler() is outer
        # last window out: thread stopped, final row spilled
        assert obs.current_sampler() is None
        for _ in range(50):
            if not _sampler_threads():
                break
            threading.Event().wait(0.02)
        assert not _sampler_threads()
        rows = obs.read_series(tmp_path)
        assert rows, "stop() must leave at least one spilled row"
        assert any("outer" in r["window"] for r in rows)

    def test_sample_hz_flag_round_trips_through_runtime(self):
        runtime.configure(obs_sample_hz=12.5)
        assert runtime.obs_sample_hz() == 12.5
        assert runtime.flag("obs_sample_hz") == "12.5"
        runtime.configure(obs_sample_hz=0)
        assert runtime.obs_sample_hz() == 0.0
