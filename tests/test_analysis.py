"""Analysis package tests: distributions, correlations, efficiency, tables."""

import numpy as np
import pytest

from repro.analysis import (
    ViolinSummary,
    cc_series,
    cross_correlations,
    dominant_pair,
    empirical_cdf,
    format_rmse_table,
    format_table,
    kde_peaks,
    pearson,
    percentile,
    spectral_efficiency,
    subadditivity_ratio,
    tbs_surface,
    theoretical_efficiency_bps_hz,
    transition_statistics,
)
from repro.ran import TraceSimulator, simulate_stationary_ideal


class TestStats:
    def test_cdf_monotone(self):
        values, probs = empirical_cdf(np.random.default_rng(0).normal(size=100))
        assert np.all(np.diff(values) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile(np.ones(5), 101)

    def test_kde_finds_two_modes(self):
        rng = np.random.default_rng(1)
        samples = np.concatenate([rng.normal(100, 10, 500), rng.normal(500, 20, 500)])
        peaks = kde_peaks(samples)
        assert len(peaks) >= 2
        assert any(abs(p - 100) < 50 for p in peaks)
        assert any(abs(p - 500) < 80 for p in peaks)

    def test_kde_single_mode(self):
        samples = np.random.default_rng(2).normal(100, 5, 500)
        assert len(kde_peaks(samples)) == 1

    def test_kde_degenerate(self):
        assert kde_peaks(np.full(10, 3.0)) == [3.0]
        with pytest.raises(ValueError):
            kde_peaks(np.ones(3))

    def test_violin_summary(self):
        summary = ViolinSummary.from_samples("combo", np.arange(1, 101, dtype=float))
        assert summary.mean == pytest.approx(50.5)
        assert summary.peak == 100.0
        assert summary.p5 < summary.median < summary.p95

    def test_subadditivity_ratio(self):
        ratio = subadditivity_ratio(np.full(10, 70.0), [np.full(10, 50.0), np.full(10, 50.0)])
        assert ratio == pytest.approx(0.3)
        with pytest.raises(ValueError):
            subadditivity_ratio(np.ones(3), [np.zeros(3)])

    def test_transition_statistics(self):
        sim = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=13)
        trace = sim.run(120.0)
        stats = transition_statistics(trace)
        assert stats.n_events >= 1
        assert stats.mean_interval_s > 0
        assert stats.std_with_events_mbps >= 0


class TestCorrelation:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))

    def test_own_rsrp_tput_correlation_strong(self):
        """§4.2: a CC's RSRP correlates strongly with its own throughput."""
        trace = simulate_stationary_ideal(
            "OpZ", duration_s=120.0, seed=21, band_lock=["n41@2500", "n25"], max_ccs_override=2
        )
        pair = dominant_pair(trace)
        assert pair is not None
        corr = cross_correlations(trace, *pair)
        # stationary UE: weaker dynamics than driving, but own-channel
        # correlation must exceed the cross-channel one on average
        own = (corr.pcell_rsrp_vs_pcell_tput + corr.scell_rsrp_vs_scell_tput) / 2
        cross = (corr.pcell_rsrp_vs_scell_tput + corr.scell_rsrp_vs_pcell_tput) / 2
        assert own > cross - 0.15

    def test_intra_band_rsrp_more_correlated_than_inter(self):
        """Fig 13: same-band CC RSRPs track each other; cross-band less."""
        intra_vals, inter_vals = [], []
        for seed in range(30, 36):
            sim = TraceSimulator(
                "OpZ", mobility="walking", dt_s=1.0, seed=seed,
                band_lock=["n41@2500", "n41@2600", "n25"], max_ccs_override=3,
            )
            trace = sim.run(150.0)
            intra = _pair_corr(trace, "n41@2500", "n41@2600")
            inter = _pair_corr(trace, "n41@2500", "n25@1900")
            if intra is not None:
                intra_vals.append(intra)
            if inter is not None:
                inter_vals.append(inter)
        assert intra_vals and inter_vals
        assert np.mean(intra_vals) > np.mean(inter_vals)

    def test_cc_series_nan_when_inactive(self):
        sim = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=3)
        trace = sim.run(30.0)
        series = cc_series(trace, "definitely-absent", "rsrp_dbm")
        assert np.all(np.isnan(series))


def _pair_corr(trace, key_a, key_b):
    a = cc_series(trace, key_a, "rsrp_dbm")
    b = cc_series(trace, key_b, "rsrp_dbm")
    both = ~(np.isnan(a) | np.isnan(b))
    if both.sum() < 20:
        return None
    return pearson(a[both], b[both])


class TestEfficiency:
    def test_theoretical_efficiency_ordering(self):
        """FDD beats TDD per Hz (duty); wider mid-band channels efficient."""
        fdd = theoretical_efficiency_bps_hz("n25", 20, n_layers=2)
        tdd = theoretical_efficiency_bps_hz("n41", 20, n_layers=2)
        assert fdd > tdd

    def test_tbs_surface_monotone(self):
        surface = tbs_surface(range(0, 28, 4), [10, 50, 100])
        assert np.all(np.diff(surface, axis=0) >= 0)
        assert np.all(np.diff(surface, axis=1) >= 0)

    def test_spectral_efficiency_from_traces(self):
        trace = simulate_stationary_ideal("OpZ", duration_s=30.0, seed=3)
        bw = {"n41@2500": 100.0, "n41@2600": 40.0, "n25@1900": 20.0, "n71@600": 20.0}
        effs = spectral_efficiency([trace], bw, min_cqi=10)
        assert effs
        for eff in effs:
            assert 0.0 < eff.efficiency_bps_hz < 60.0


class TestReports:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.500" in out

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_rmse_table(self):
        out = format_rmse_table(
            {"ds1": {"LSTM": 0.2, "Prism5G": 0.15}},
            methods=["LSTM", "Prism5G"],
            title="Table 4",
        )
        assert "Table 4" in out
        assert "0.150" in out
