"""Prism5G model unit tests: packing, masking, ablations, per-CC output."""

import numpy as np
import pytest

from repro.core import Prism5G, pack_inputs, unpack_inputs
from repro.nn import Tensor


def _toy_batch(n=6, t=5, c=3, f=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, t, c, f))
    mask = (rng.random((n, t, c)) > 0.3).astype(float)
    y_hist = rng.random((n, t))
    return x, mask, y_hist


class TestPacking:
    def test_roundtrip(self):
        x, mask, y_hist = _toy_batch()
        packed = pack_inputs(x, mask, y_hist)
        x2, m2, h2 = unpack_inputs(packed, 3, 4)
        np.testing.assert_allclose(x2, x)
        np.testing.assert_allclose(m2, mask)
        np.testing.assert_allclose(h2, y_hist)

    def test_shape_validation(self):
        x, mask, y_hist = _toy_batch()
        with pytest.raises(ValueError):
            pack_inputs(x, mask[:, :, :2], y_hist)
        with pytest.raises(ValueError):
            unpack_inputs(pack_inputs(x, mask, y_hist), 4, 4)


class TestForward:
    def test_output_layout(self):
        x, mask, y_hist = _toy_batch()
        model = Prism5G(n_ccs=3, n_features=4, horizon=7, hidden=8)
        out = model(Tensor(pack_inputs(x, mask, y_hist)))
        assert out.shape == (6, 7 * (1 + 3))

    def test_aggregate_is_sum_of_per_cc(self):
        x, mask, y_hist = _toy_batch()
        model = Prism5G(n_ccs=3, n_features=4, horizon=5, hidden=8)
        packed = pack_inputs(x, mask, y_hist)
        out = model(Tensor(packed)).numpy()
        agg = out[:, :5]
        per_cc = model.predict_per_cc(packed)  # (n, C, H)
        np.testing.assert_allclose(agg, per_cc.sum(axis=1), atol=1e-9)

    def test_state_trigger_gates_inactive_cc(self):
        """With the state trigger, a CC inactive at the last step predicts 0."""
        x, mask, y_hist = _toy_batch()
        mask[:, -1, 1] = 0.0
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, use_state_trigger=True)
        per_cc = model.predict_per_cc(pack_inputs(x, mask, y_hist))
        np.testing.assert_allclose(per_cc[:, 1, :], 0.0)

    def test_no_state_ablation_does_not_gate(self):
        x, mask, y_hist = _toy_batch()
        mask[:, -1, 1] = 0.0
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, use_state_trigger=False)
        per_cc = model.predict_per_cc(pack_inputs(x, mask, y_hist))
        assert np.abs(per_cc[:, 1, :]).max() > 0

    def test_fusion_ablation_changes_output(self):
        x, mask, y_hist = _toy_batch()
        packed = pack_inputs(x, mask, y_hist)
        full = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, seed=1)
        ablated = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, seed=1, use_fusion=False)
        assert not np.allclose(full(Tensor(packed)).numpy(), ablated(Tensor(packed)).numpy())

    def test_fusion_conditions_on_other_ccs(self):
        """With fusion, changing CC 2's history changes CC 0's forecast."""
        x, mask, y_hist = _toy_batch()
        mask[:] = 1.0
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, seed=0)
        base = model.predict_per_cc(pack_inputs(x, mask, y_hist))
        x2 = x.copy()
        x2[:, :, 2, :] += 3.0
        mod = model.predict_per_cc(pack_inputs(x2, mask, y_hist))
        assert not np.allclose(base[:, 0, :], mod[:, 0, :])

    def test_no_fusion_isolates_ccs(self):
        """Without fusion, CC 0's forecast ignores CC 2's features."""
        x, mask, y_hist = _toy_batch()
        mask[:] = 1.0
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, seed=0, use_fusion=False)
        base = model.predict_per_cc(pack_inputs(x, mask, y_hist))
        x2 = x.copy()
        x2[:, :, 2, :] += 3.0
        mod = model.predict_per_cc(pack_inputs(x2, mask, y_hist))
        np.testing.assert_allclose(base[:, 0, :], mod[:, 0, :])

    def test_gru_variant(self):
        x, mask, y_hist = _toy_batch()
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, rnn="gru")
        out = model(Tensor(pack_inputs(x, mask, y_hist)))
        assert out.shape == (6, 4 * 4)

    def test_invalid_rnn_kind(self):
        with pytest.raises(ValueError):
            Prism5G(n_ccs=2, n_features=3, rnn="kalman")

    def test_weights_shared_across_ccs(self):
        """Same features on different CC slots give identical predictions
        when fusion is off (the encoder/head are weight-shared)."""
        rng = np.random.default_rng(0)
        t, f = 5, 4
        row = rng.normal(size=(1, t, f))
        x = np.zeros((1, t, 3, f))
        y_hist = rng.random((1, t))
        model = Prism5G(n_ccs=3, n_features=f, horizon=4, hidden=8, use_fusion=False)
        outs = []
        for slot in range(3):
            x_slot = np.zeros_like(x)
            mask = np.zeros((1, t, 3))
            x_slot[:, :, slot, :] = row
            mask[:, :, slot] = 1.0
            per_cc = model.predict_per_cc(pack_inputs(x_slot, mask, y_hist))
            outs.append(per_cc[0, slot])
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-9)
        np.testing.assert_allclose(outs[0], outs[2], atol=1e-9)

    def test_gradients_flow_to_all_parameters(self):
        x, mask, y_hist = _toy_batch()
        mask[:] = 1.0
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8)
        out = model(Tensor(pack_inputs(x, mask, y_hist)))
        (out * out).mean().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"
