"""Predictor API tests on a small shared dataset (all seven baselines)."""

import numpy as np
import pytest

from repro.core import (
    DeepConfig,
    GBDTPredictor,
    LSTMPredictor,
    Lumos5GPredictor,
    Prism5GPredictor,
    ProphetPredictor,
    RFPredictor,
    TCNPredictor,
    evaluate_predictors,
    make_default_predictors,
)
from repro.data import SubDatasetSpec, build_subdataset, random_split

FAST = DeepConfig(hidden=12, max_epochs=8, patience=8, lr=0.01)


@pytest.fixture(scope="module")
def dataset():
    spec = SubDatasetSpec("OpZ", "driving", "long")
    return build_subdataset(spec, n_traces=3, samples_per_trace=120, seed=2)


@pytest.fixture(scope="module")
def splits(dataset):
    return random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)


def _sanity(predictor, splits):
    train, val, test = splits
    predictor.fit(train, val)
    pred = predictor.predict(test)
    assert pred.shape == test.y.shape
    assert np.all(np.isfinite(pred))
    rmse = predictor.evaluate(test)
    assert 0.0 <= rmse < 1.0  # normalized targets; random guessing ~0.5+
    return rmse


class TestEachPredictor:
    def test_prophet(self, splits):
        _sanity(ProphetPredictor(), splits)

    def test_lstm(self, splits):
        _sanity(LSTMPredictor(FAST), splits)

    def test_tcn(self, splits):
        _sanity(TCNPredictor(FAST), splits)

    def test_lumos5g(self, splits):
        _sanity(Lumos5GPredictor(FAST), splits)

    def test_gbdt(self, splits):
        _sanity(GBDTPredictor(n_estimators=15), splits)

    def test_rf(self, splits):
        _sanity(RFPredictor(n_estimators=8, max_depth=6), splits)

    def test_prism5g(self, splits):
        train, val, test = splits
        predictor = Prism5GPredictor(FAST)
        predictor.fit(train, val)
        assert predictor.predict(test).shape == test.y.shape
        per_cc = predictor.predict_per_cc(test)
        assert per_cc.shape == (len(test), test.n_ccs, test.horizon)
        # aggregate equals the sum of per-CC forecasts
        np.testing.assert_allclose(predictor.predict(test), per_cc.sum(axis=1), atol=1e-9)

    def test_prism_ablations_named(self):
        assert Prism5GPredictor(FAST, use_state_trigger=False).name == "Prism5G (no state)"
        assert Prism5GPredictor(FAST, use_fusion=False).name == "Prism5G (no fusion)"

    def test_unfitted_raises(self, splits):
        with pytest.raises(RuntimeError):
            LSTMPredictor(FAST).predict(splits[2])
        with pytest.raises(RuntimeError):
            GBDTPredictor().predict(splits[2])

    def test_deep_models_beat_prophet(self, splits):
        """Paper finding: stats-only Prophet is the weakest baseline."""
        prophet_rmse = _sanity(ProphetPredictor(), splits)
        lstm_rmse = _sanity(LSTMPredictor(FAST), splits)
        assert lstm_rmse < prophet_rmse


class TestEvaluationHarness:
    def test_evaluate_predictors_random_split(self, dataset):
        result = evaluate_predictors(
            dataset,
            make_default_predictors(FAST, include=["Prophet", "LSTM"]),
            dataset_name="toy",
        )
        assert set(result.rmse) == {"Prophet", "LSTM"}
        assert result.dataset_name == "toy"

    def test_improvement_metric(self, dataset):
        result = evaluate_predictors(
            dataset,
            make_default_predictors(FAST, include=["Prophet", "Prism5G"]),
        )
        improv = result.improvement_over_best_baseline()
        assert -100.0 < improv < 100.0

    def test_improvement_requires_prism(self, dataset):
        result = evaluate_predictors(
            dataset, make_default_predictors(FAST, include=["Prophet"])
        )
        with pytest.raises(ValueError):
            result.improvement_over_best_baseline()

    def test_unknown_include_raises_value_error(self):
        with pytest.raises(ValueError, match="registered predictors") as exc:
            make_default_predictors(FAST, include=["Prophet", "Oracle9000"])
        assert "Oracle9000" in str(exc.value)
        assert "Prism5G" in str(exc.value)

    def test_include_accepts_ablations(self):
        predictors = make_default_predictors(FAST, include=["Prism5G (no state)"])
        assert predictors["Prism5G (no state)"].name == "Prism5G (no state)"

    def test_trace_split_protocol(self, dataset):
        result = evaluate_predictors(
            dataset,
            make_default_predictors(FAST, include=["LSTM"]),
            split="trace",
        )
        assert "LSTM" in result.rmse
