"""Checkpoint round-trips: bit-identical restore for every deep predictor."""

import numpy as np
import pytest

from repro.core.predictors import (
    DeepConfig,
    _DeepPredictor,
    create_predictor,
    registered_predictors,
)
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.nn import CHECKPOINT_SCHEMA, load_state, read_checkpoint_metadata, save_state
from repro.nn.modules import Linear

FAST = DeepConfig(hidden=8, max_epochs=2, patience=2)

DEEP_NAMES = tuple(
    name
    for name in registered_predictors()
    if isinstance(create_predictor(name, FAST), _DeepPredictor)
)


@pytest.fixture(scope="module")
def splits():
    spec = SubDatasetSpec("OpZ", "driving", "long")
    dataset = build_subdataset(spec, n_traces=2, samples_per_trace=60, seed=1)
    return random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)


class TestPredictorCheckpoints:
    def test_registry_has_deep_predictors(self):
        assert set(DEEP_NAMES) >= {"LSTM", "TCN", "Lumos5G", "Prism5G"}

    @pytest.mark.parametrize("name", DEEP_NAMES)
    def test_round_trip_bit_identical(self, name, splits, tmp_path):
        train, val, test = splits
        fitted = create_predictor(name, FAST).fit(train, val)
        expected = fitted.predict(test)
        path = tmp_path / "ckpt.npz"
        fitted.save_checkpoint(path)

        # a brand-new instance, never fitted, restores the exact model
        restored = create_predictor(name, FAST).load_checkpoint(path)
        np.testing.assert_array_equal(restored.predict(test), expected)

    def test_prism_per_cc_survives_restore(self, splits, tmp_path):
        train, val, test = splits
        fitted = create_predictor("Prism5G", FAST).fit(train, val)
        path = tmp_path / "prism.npz"
        fitted.save_checkpoint(path)
        restored = create_predictor("Prism5G", FAST).load_checkpoint(path)
        np.testing.assert_array_equal(
            restored.predict_per_cc(test), fitted.predict_per_cc(test)
        )

    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            create_predictor("LSTM", FAST).save_checkpoint(tmp_path / "x.npz")

    def test_cross_predictor_load_rejected(self, splits, tmp_path):
        train, val, _ = splits
        path = tmp_path / "lstm.npz"
        create_predictor("LSTM", FAST).fit(train, val).save_checkpoint(path)
        with pytest.raises(ValueError, match="saved by predictor 'LSTM'"):
            create_predictor("TCN", FAST).load_checkpoint(path)

    def test_mismatched_architecture_rejected(self, splits, tmp_path):
        train, val, _ = splits
        path = tmp_path / "small.npz"
        create_predictor("LSTM", FAST).fit(train, val).save_checkpoint(path)
        wider = create_predictor("LSTM", DeepConfig(hidden=16, max_epochs=2))
        with pytest.raises(ValueError, match="shape"):
            wider.load_checkpoint(path)

    def test_headerless_file_rejected_with_clear_error(self, splits, tmp_path):
        train, _, _ = splits
        path = tmp_path / "legacy.npz"
        fitted = create_predictor("LSTM", FAST).fit(train)
        np.savez(path, **fitted.trainer.model.state_dict())  # no header
        with pytest.raises(ValueError, match="no metadata header"):
            create_predictor("LSTM", FAST).load_checkpoint(path)


class TestStateSerialization:
    def test_header_schema_and_shapes(self, tmp_path):
        model = Linear(4, 3)
        path = tmp_path / "linear.npz"
        save_state(model, path, metadata={"note": "hi"})
        meta = read_checkpoint_metadata(path)
        assert meta["schema"] == CHECKPOINT_SCHEMA
        assert meta["metadata"] == {"note": "hi"}
        assert all(
            list(param.data.shape) == meta["shapes"][name]
            for name, param in model.named_parameters()
        )

    def test_legacy_headerless_load_still_works(self, tmp_path):
        model = Linear(4, 3)
        path = tmp_path / "legacy.npz"
        np.savez(path, **model.state_dict())
        assert read_checkpoint_metadata(path) is None
        clone = Linear(4, 3, rng=np.random.default_rng(1))
        load_state(clone, path)
        for (_, a), (_, b) in zip(
            sorted(model.named_parameters()), sorted(clone.named_parameters())
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_shape_mismatch_names_offender(self, tmp_path):
        model = Linear(4, 3)
        path = tmp_path / "linear.npz"
        save_state(model, path)
        with pytest.raises(ValueError, match="weight"):
            load_state(Linear(5, 3), path)
