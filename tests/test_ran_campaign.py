"""Campaign orchestration and CA deployment statistics tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran import (
    CampaignConfig,
    TraceSimulator,
    analyze_traces,
    cc_spatial_map,
    run_campaign,
)


@pytest.fixture(scope="module")
def small_campaign():
    config = CampaignConfig(
        operators=("OpZ", "OpX"),
        scenarios=("urban", "suburban"),
        rats=("5G",),
        traces_per_cell=1,
        duration_s=40.0,
        seed=0,
    )
    return run_campaign(config)


class TestAnalyzeTraces:
    def test_statistics_fields(self):
        traces = [TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(40.0) for s in (1, 2)]
        stats = analyze_traces(traces, operator="OpZ", rat="5G")
        assert stats.unique_channels >= 2
        assert stats.max_ccs >= 2
        assert 0.0 <= stats.ca_prevalence <= 1.0
        assert stats.peak_tput_mbps >= stats.mean_tput_mbps

    def test_combo_counts_ordered_ge_unique(self):
        traces = [TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(60.0) for s in range(3)]
        stats = analyze_traces(traces)
        assert stats.ordered_combos >= stats.unique_combos

    def test_empty_traces(self):
        stats = analyze_traces([])
        assert stats.ca_prevalence == 0.0
        assert stats.unique_channels == 0


class TestCampaign:
    def test_all_cells_present(self, small_campaign):
        assert len(small_campaign.stats) == 2 * 2  # 2 operators x 2 scenarios
        assert len(small_campaign.traces) == 4

    def test_opz_more_ca_than_opx(self, small_campaign):
        """Fig 25: OpZ deploys 5G CA far more broadly than OpX."""
        table = small_campaign.prevalence_table()
        opz = np.mean(list(table["OpZ"].values()))
        opx = np.mean(list(table["OpX"].values()))
        assert opz > opx

    def test_spatial_map(self):
        trace = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=5).run(60.0)
        grid = cc_spatial_map(trace, grid_m=100.0)
        assert grid
        assert all(0 <= v <= 4 for v in grid.values())


class TestStreamingAccumulator:
    """analyze_traces streams through CAStatisticsAccumulator (O(1) memory)."""

    @pytest.fixture(scope="class")
    def traces(self):
        return [
            TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(30.0, route_id=s)
            for s in range(4)
        ]

    def test_accumulator_matches_analyze(self, traces):
        from repro.ran import CAStatisticsAccumulator

        acc = CAStatisticsAccumulator()
        for trace in traces:
            acc.update_trace(trace)
        stats = acc.finalize("OpZ", "5G")
        ref = analyze_traces(traces, "OpZ", "5G")
        assert stats.unique_channels == ref.unique_channels
        assert stats.combo_counter == ref.combo_counter
        assert stats.ca_prevalence == ref.ca_prevalence
        assert stats.peak_tput_mbps == ref.peak_tput_mbps
        assert stats.mean_tput_mbps == ref.mean_tput_mbps

    def test_json_round_trip(self, traces):
        from repro.ran import CAStatisticsAccumulator
        import json

        acc = CAStatisticsAccumulator()
        for trace in traces:
            acc.update_trace(trace)
        data = json.loads(json.dumps(acc.to_dict()))
        back = CAStatisticsAccumulator.from_dict(data)
        assert back == acc  # dataclass equality covers every field

    def test_merge_requires_accumulator(self, traces):
        from repro.ran import CAStatistics

        bare = CAStatistics(
            operator="OpZ", rat="5G", unique_channels=1, ordered_combos=1,
            unique_combos=1, max_ccs=1, ca_prevalence=0.5, peak_tput_mbps=1.0,
            mean_tput_mbps=1.0,
        )
        with pytest.raises(ValueError, match="accumulator"):
            bare.merge(analyze_traces(traces))


class TestMergeProperty:
    """Merging per-shard statistics == statistics over concatenated traces."""

    @pytest.fixture(scope="class")
    def traces(self):
        return [
            TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=40 + s).run(25.0, route_id=s)
            for s in range(5)
        ]

    @given(assignment=st.lists(st.integers(min_value=0, max_value=2), min_size=5, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_merge_equals_concat(self, traces, assignment):
        shards = {}
        for trace, shard in zip(traces, assignment):
            shards.setdefault(shard, []).append(trace)
        per_shard = [analyze_traces(group, "OpZ", "5G") for group in shards.values()]
        merged = per_shard[0]
        for stat in per_shard[1:]:
            merged = merged.merge(stat)
        ref = analyze_traces(traces, "OpZ", "5G")
        assert merged.unique_channels == ref.unique_channels
        assert merged.ordered_combos == ref.ordered_combos
        assert merged.unique_combos == ref.unique_combos
        assert merged.max_ccs == ref.max_ccs
        assert merged.combo_counter == ref.combo_counter
        assert merged.ca_prevalence == pytest.approx(ref.ca_prevalence, abs=0.0)
        assert merged.peak_tput_mbps == ref.peak_tput_mbps
        # float-sum order differs between merge orders: approx, not exact
        assert merged.mean_tput_mbps == pytest.approx(ref.mean_tput_mbps, rel=1e-9)
