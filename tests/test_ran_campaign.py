"""Campaign orchestration and CA deployment statistics tests."""

import numpy as np
import pytest

from repro.ran import (
    CampaignConfig,
    TraceSimulator,
    analyze_traces,
    cc_spatial_map,
    run_campaign,
)


@pytest.fixture(scope="module")
def small_campaign():
    config = CampaignConfig(
        operators=("OpZ", "OpX"),
        scenarios=("urban", "suburban"),
        rats=("5G",),
        traces_per_cell=1,
        duration_s=40.0,
        seed=0,
    )
    return run_campaign(config)


class TestAnalyzeTraces:
    def test_statistics_fields(self):
        traces = [TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(40.0) for s in (1, 2)]
        stats = analyze_traces(traces, operator="OpZ", rat="5G")
        assert stats.unique_channels >= 2
        assert stats.max_ccs >= 2
        assert 0.0 <= stats.ca_prevalence <= 1.0
        assert stats.peak_tput_mbps >= stats.mean_tput_mbps

    def test_combo_counts_ordered_ge_unique(self):
        traces = [TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(60.0) for s in range(3)]
        stats = analyze_traces(traces)
        assert stats.ordered_combos >= stats.unique_combos

    def test_empty_traces(self):
        stats = analyze_traces([])
        assert stats.ca_prevalence == 0.0
        assert stats.unique_channels == 0


class TestCampaign:
    def test_all_cells_present(self, small_campaign):
        assert len(small_campaign.stats) == 2 * 2  # 2 operators x 2 scenarios
        assert len(small_campaign.traces) == 4

    def test_opz_more_ca_than_opx(self, small_campaign):
        """Fig 25: OpZ deploys 5G CA far more broadly than OpX."""
        table = small_campaign.prevalence_table()
        opz = np.mean(list(table["OpZ"].values()))
        opx = np.mean(list(table["OpX"].values()))
        assert opz > opx

    def test_spatial_map(self):
        trace = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=5).run(60.0)
        grid = cc_spatial_map(trace, grid_m=100.0)
        assert grid
        assert all(0 <= v <= 4 for v in grid.values())
