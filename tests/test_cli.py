"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.operator == "OpZ"
        assert args.rat == "5G"

    def test_rejects_bad_operator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--operator", "OpQ"])


class TestSimulate:
    def test_simulate_prints_summary(self, capsys):
        rc = main(["simulate", "--duration", "10", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OpZ 5G" in out
        assert "Mbps" in out

    def test_simulate_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(["simulate", "--duration", "10", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        from repro.ran import Trace

        trace = Trace.from_jsonl(out)
        assert len(trace) == 10

    def test_simulate_nsa(self, capsys):
        rc = main(["simulate", "--nsa", "--operator", "OpX", "--duration", "10"])
        assert rc == 0
        assert "NSA" in capsys.readouterr().out


class TestCampaign:
    def test_campaign_table(self, capsys):
        rc = main(
            [
                "campaign", "--operators", "OpZ", "--scenarios", "urban",
                "--rats", "5G", "--runs", "1", "--duration", "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "OpZ" in out
        assert "CA%" in out


class TestTrainEvaluate:
    def test_train_and_save(self, tmp_path, capsys):
        model_path = tmp_path / "prism.npz"
        rc = main(
            [
                "train", "--traces", "2", "--samples", "60", "--epochs", "2",
                "--hidden", "8", "--model-out", str(model_path),
            ]
        )
        assert rc == 0
        assert model_path.exists()
        assert "RMSE" in capsys.readouterr().out

    def test_evaluate_table(self, capsys):
        rc = main(
            [
                "evaluate", "--traces", "2", "--samples", "60", "--epochs", "2",
                "--hidden", "8", "--predictors", "Prophet", "Prism5G",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Prophet" in out and "Prism5G" in out

    def test_evaluate_unknown_predictor(self, capsys):
        rc = main(["evaluate", "--predictors", "Oracle9000"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "Oracle9000" in err and "Prism5G" in err

    def test_evaluate_list_predictors(self, capsys):
        rc = main(["evaluate", "--list-predictors"])
        assert rc == 0
        from repro.core import registered_predictors

        out = capsys.readouterr().out.splitlines()
        assert out == list(registered_predictors())


class TestRun:
    def test_run_twice_skips_second_time(self, tmp_path, capsys):
        config = tmp_path / "exp.json"
        config.write_text(
            """{"name": "cli-tiny", "n_traces": 2, "samples_per_trace": 60,
                "predictors": ["Prophet"], "deep": {"hidden": 8, "max_epochs": 2}}"""
        )
        out_dir = tmp_path / "run"
        rc = main(["run", str(config), "--out-dir", str(out_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "completed" in out and "Prophet" in out
        assert (out_dir / "run.json").exists()

        rc = main(["run", str(config), "--out-dir", str(out_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all stages skipped" in out

    def test_run_missing_config_fails_cleanly(self, tmp_path, capsys):
        rc = main(["run", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "nope.json" in capsys.readouterr().err

    def test_run_invalid_config_fails_cleanly(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text('{"predictors": ["Oracle9000"]}')
        rc = main(["run", str(config)])
        assert rc == 2
        assert "registered predictors" in capsys.readouterr().err


class TestObs:
    @pytest.fixture(autouse=True)
    def obs_off_after(self):
        from repro import obs

        yield
        obs.configure(mode=obs.MODE_OFF)
        obs.reset()

    def test_simulate_with_trace_then_report_and_chrome(self, tmp_path, capsys):
        import json

        obs_dir = tmp_path / "obs"
        rc = main(
            [
                "simulate", "--duration", "10", "--seed", "3",
                "--obs", "trace", "--obs-dir", str(obs_dir),
            ]
        )
        assert rc == 0
        assert (obs_dir / "latest.json").exists()

        rc = main(["obs", "report", "--dir", str(obs_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulate run" in out
        assert "sim.steps" in out

        chrome = tmp_path / "trace.json"
        rc = main(["obs", "trace", "--chrome", str(chrome), "--dir", str(obs_dir)])
        assert rc == 0
        doc = json.loads(chrome.read_text())
        assert any(e["name"] == "simulate.run" for e in doc["traceEvents"])

    def test_obs_report_json_mode(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        main(["simulate", "--duration", "5", "--obs", "metrics", "--obs-dir", str(obs_dir)])
        capsys.readouterr()
        import json

        rc = main(["obs", "report", "--dir", str(obs_dir), "--json"])
        assert rc == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["kind"] == "simulate"
        assert manifest["kernel_paths"]["vectorized_radio"] is True

    def test_obs_report_empty_dir_fails_cleanly(self, tmp_path, capsys):
        rc = main(["obs", "report", "--dir", str(tmp_path)])
        assert rc == 1
        assert "no run manifest" in capsys.readouterr().err

    def test_obs_trace_empty_dir_fails_cleanly(self, tmp_path, capsys):
        rc = main(["obs", "trace", "--chrome", str(tmp_path / "t.json"), "--dir", str(tmp_path)])
        assert rc == 1
        assert "no spans" in capsys.readouterr().err
