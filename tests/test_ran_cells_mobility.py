"""Deployment, cell, and mobility model tests."""

import math

import numpy as np
import pytest

from repro.ran import (
    ChannelPlan,
    DrivingRoute,
    IndoorWalk,
    RandomWalk,
    Stationary,
    build_deployment,
    get_operator,
    make_mobility,
)


class TestDeployment:
    def test_urban_denser_than_suburban(self):
        plans = [ChannelPlan("n41", 100)]
        urban = build_deployment(plans, "urban", area_m=1_000, seed=0)
        suburban = build_deployment(plans, "suburban", area_m=1_000, seed=0)
        assert len(urban.stations) > len(suburban.stations)

    def test_channel_keys_stable_across_sites(self):
        plans = [ChannelPlan("n41", 100), ChannelPlan("n41", 40)]
        deployment = build_deployment(plans, "urban", area_m=800, seed=1)
        keys_per_site = [
            sorted(c.channel_key for c in bs.cells) for bs in deployment.stations
        ]
        assert all(k == keys_per_site[0] for k in keys_per_site)
        # the two n41 carriers must be distinguishable (n41^a vs n41^b)
        assert len(set(keys_per_site[0])) == 2

    def test_deploy_fraction_thins_band(self):
        plans = [ChannelPlan("n71", 20), ChannelPlan("n41", 100)]
        deployment = build_deployment(
            plans, "urban", area_m=2_000, seed=2, deploy_fraction={"n41": 0.3}
        )
        n71_sites = sum(any(c.band.name == "n71" for c in bs.cells) for bs in deployment.stations)
        n41_sites = sum(any(c.band.name == "n41" for c in bs.cells) for bs in deployment.stations)
        assert n41_sites < n71_sites

    def test_cells_near_respects_band_radius(self):
        plans = [ChannelPlan("n71", 20), ChannelPlan("n260", 100)]
        deployment = build_deployment(plans, "urban", area_m=400, seed=0)
        far_point = (10_000.0, 10_000.0)
        assert deployment.cells_near(far_point) == []
        site = deployment.stations[0].position
        near = deployment.cells_near((site[0] + 50, site[1]))
        assert any(c.band.name == "n260" for c in near)

    def test_mmwave_not_visible_beyond_200m(self):
        plans = [ChannelPlan("n260", 100)]
        deployment = build_deployment(plans, "urban", area_m=400, seed=0)
        site = deployment.stations[0].position
        cells = deployment.cells_near((site[0] + 500, site[1]))
        assert all(math.dist(c.position, (site[0] + 500, site[1])) <= 200 for c in cells)

    def test_empty_deployment_raises(self):
        from repro.ran.cells import Deployment

        with pytest.raises(ValueError):
            Deployment([])

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            build_deployment([ChannelPlan("n41", 100)], "rural")

    def test_operator_profiles_build(self):
        for name in ("OpX", "OpY", "OpZ"):
            profile = get_operator(name)
            deployment = build_deployment(
                profile.channel_plans(), "urban", area_m=700, seed=0,
                deploy_fraction=profile.fraction_for("urban"),
            )
            assert deployment.unique_channels("5G")
            assert deployment.unique_channels("4G")

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            get_operator("OpQ")


class TestMobility:
    def test_stationary_never_moves(self):
        rng = np.random.default_rng(0)
        model = Stationary(position=(3.0, 4.0))
        model.reset(rng)
        for _ in range(10):
            state = model.step(1.0, rng)
        assert state.position == (3.0, 4.0)
        assert state.speed_mps == 0.0

    def test_walk_speed_is_calibrated(self):
        rng = np.random.default_rng(1)
        model = RandomWalk(speed_mps=1.4)
        start = model.reset(rng).position
        total = 0.0
        prev = start
        for _ in range(100):
            state = model.step(1.0, rng)
            total += math.dist(prev, state.position)
            prev = state.position
        assert total == pytest.approx(140.0, rel=0.05)

    def test_walk_reflects_at_boundary(self):
        rng = np.random.default_rng(2)
        model = RandomWalk(start=(5.0, 5.0), speed_mps=5.0, area_m=50.0)
        model.reset(rng)
        for _ in range(500):
            state = model.step(1.0, rng)
            assert -1e-9 <= state.position[0] <= 50.0 + 1e-9
            assert -1e-9 <= state.position[1] <= 50.0 + 1e-9

    def test_driving_follows_waypoints(self):
        rng = np.random.default_rng(3)
        model = DrivingRoute(
            waypoints=((0.0, 0.0), (100.0, 0.0)),
            speed_mps=10.0,
            stop_probability_per_min=0.0,
            loop=True,
        )
        model.reset(rng)
        state = model.step(1.0, rng)
        assert state.position[1] == pytest.approx(0.0)  # stays on the segment
        assert 0 < state.position[0] <= 12.0

    def test_driving_stops_at_lights(self):
        rng = np.random.default_rng(4)
        model = DrivingRoute(speed_mps=10.0, stop_probability_per_min=10.0, stop_duration_s=5.0)
        model.reset(rng)
        speeds = [model.step(1.0, rng).speed_mps for _ in range(120)]
        assert any(s == 0.0 for s in speeds)
        assert any(s > 0.0 for s in speeds)

    def test_indoor_walk_flagged_and_bounded(self):
        rng = np.random.default_rng(5)
        model = IndoorWalk(start=(100.0, 100.0), area_m=30.0)
        model.reset(rng)
        for _ in range(200):
            state = model.step(1.0, rng)
            assert state.indoor
            assert math.dist(state.position, (100.0, 100.0)) <= 30.0 + 2.0

    def test_factory(self):
        assert isinstance(make_mobility("stationary"), Stationary)
        assert isinstance(make_mobility("indoor"), IndoorWalk)
        with pytest.raises(ValueError):
            make_mobility("teleport")

    def test_route_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            DrivingRoute(waypoints=((0.0, 0.0),))
