"""Tests for the city-scale campaign engine: shard plan, oracle, resume, spill."""

from __future__ import annotations

import pytest

from repro import obs
from repro.data.cache import TraceCache
from repro.ran import (
    CityCampaignConfig,
    MultiUESimulator,
    ShardPlan,
    TraceSimulator,
    city_campaign_jobs,
    run_campaign,
    run_city_campaign,
)
from repro.ran.campaign import CampaignConfig, _build_group_deployment, _mobility_for


def _tiny_config(**overrides) -> CityCampaignConfig:
    base = dict(
        operators=("OpZ",),
        scenarios=("urban", "highway"),
        rats=("5G",),
        ues=3,
        cells=6,
        shards=3,
        cohort=2,
        duration_s=6.0,
        dt_s=1.0,
        seed=11,
    )
    base.update(overrides)
    return CityCampaignConfig(**base)


class TestShardPlan:
    def test_deterministic(self):
        config = _tiny_config()
        plan_a = ShardPlan.build(config)
        plan_b = ShardPlan.build(config)
        assert plan_a == plan_b
        assert plan_a.campaign_hash == config.hash()

    def test_covers_every_ue_exactly_once(self):
        config = _tiny_config(ues=13, shards=4)
        plan = ShardPlan.build(config)
        jobs = city_campaign_jobs(config)
        assert plan.n_ues == len(jobs)
        seen = sorted(job.index for shard in plan.shards for job in shard)
        assert seen == [job.index for job in jobs]

    def test_shard_of_is_pure(self):
        config = _tiny_config()
        h = config.hash()
        assert all(
            ShardPlan.shard_of(h, i, 5) == ShardPlan.shard_of(h, i, 5) for i in range(20)
        )
        assert all(0 <= ShardPlan.shard_of(h, i, 5) < 5 for i in range(20))

    def test_job_seeds_match_legacy_nested_loops(self):
        config = _tiny_config(ues=2)
        jobs = city_campaign_jobs(config)
        # run_campaign assigns seeds by incrementing from config.seed in
        # operator > rat > scenario > trace order; the city planner must
        # reproduce that exactly (it is what makes the oracle bit-identical)
        assert [job.seed for job in jobs] == [config.seed + 1 + i for i in range(len(jobs))]


class TestLegacyOracle:
    """cells=0, shards=1 must be bit-identical to run_campaign."""

    def test_bit_identical_to_run_campaign(self, tmp_path):
        legacy = run_campaign(
            CampaignConfig(
                operators=("OpZ", "OpX"),
                scenarios=("urban", "highway"),
                rats=("5G",),
                traces_per_cell=1,
                duration_s=10.0,
                dt_s=1.0,
                seed=5,
            ),
            cache=None,
        )
        city = run_city_campaign(
            CityCampaignConfig(
                operators=("OpZ", "OpX"),
                scenarios=("urban", "highway"),
                rats=("5G",),
                ues=1,
                cells=0,
                shards=1,
                duration_s=10.0,
                dt_s=1.0,
                seed=5,
            ),
            state_dir=tmp_path / "state",
        )
        assert city.complete
        assert set(city.stats) == set(legacy.stats)
        for key, ref in legacy.stats.items():
            got = city.stats[key]
            assert got.unique_channels == ref.unique_channels
            assert got.combo_counter == ref.combo_counter
            assert got.max_ccs == ref.max_ccs
            # bit-identical, not approximately equal
            assert got.ca_prevalence == ref.ca_prevalence
            assert got.peak_tput_mbps == ref.peak_tput_mbps
            assert got.mean_tput_mbps == ref.mean_tput_mbps


class TestCityCampaign:
    def test_resume_skips_completed_shards(self, tmp_path):
        config = _tiny_config()
        state = tmp_path / "state"

        partial = run_city_campaign(config, state_dir=state, max_shards=1)
        assert not partial.complete
        assert partial.shards_completed == 1
        assert partial.shards_total == config.shards

        obs.configure(mode=obs.MODE_METRICS)
        obs.reset()
        try:
            full = run_city_campaign(config, state_dir=state)
            counters = obs.snapshot()["counters"]
        finally:
            obs.configure(mode=obs.MODE_OFF)
        assert full.complete
        assert full.shards_resumed == 1
        assert full.shards_completed == config.shards
        assert counters.get("campaign.shard.resumed") == 1

        again = run_city_campaign(config, state_dir=state)
        assert again.complete
        assert again.shards_resumed == config.shards
        # merged stats are deterministic across resumed runs
        assert again.stats == full.stats
        assert again.n_ues == len(city_campaign_jobs(config))

    def test_stale_state_not_resumed(self, tmp_path):
        state = tmp_path / "state"
        run_city_campaign(_tiny_config(), state_dir=state)
        # different campaign hash -> same state dir must not be trusted
        other = run_city_campaign(_tiny_config(seed=12), state_dir=state)
        assert other.complete
        assert other.shards_resumed == 0

    def test_spill_round_trip(self, tmp_path):
        config = _tiny_config(spill_traces=True)
        result = run_city_campaign(
            config, state_dir=tmp_path / "state", cache_dir=tmp_path / "cache"
        )
        assert result.complete
        assert result.spill_keys
        traces = result.load_spilled_traces(cache=TraceCache(tmp_path / "cache"))
        assert len(traces) == result.n_ues
        steps = int(config.duration_s / config.dt_s)
        assert all(len(trace.records) == steps for trace in traces)


class TestMultiUEOracle:
    """Batched SoA stepping must match per-lane stepping."""

    def _lanes(self, deployment, config, jobs):
        return [
            TraceSimulator(
                operator=job.operator,
                scenario=job.scenario,
                mobility=_mobility_for(job.scenario),
                modem=config.modem,
                rat=job.rat,
                dt_s=config.dt_s,
                seed=job.seed,
                deployment=deployment,
            )
            for job in jobs
        ]

    def test_batched_matches_per_lane(self):
        config = _tiny_config(ues=4, cells=8)
        jobs = [job for job in city_campaign_jobs(config) if job.scenario == "urban"]
        deployment = _build_group_deployment(config, "OpZ", "urban")

        batched = MultiUESimulator(self._lanes(deployment, config, jobs)).run(
            config.duration_s, route_ids=[job.route_id for job in jobs]
        )
        lockstep = MultiUESimulator(
            self._lanes(deployment, config, jobs), batch=False
        ).run(config.duration_s, route_ids=[job.route_id for job in jobs])

        assert len(batched) == len(lockstep) == len(jobs)
        for got, ref in zip(batched, lockstep):
            assert got.records == ref.records

    def test_on_record_streaming_matches_kept_traces(self):
        config = _tiny_config(ues=3, cells=8)
        jobs = [job for job in city_campaign_jobs(config) if job.scenario == "urban"]
        deployment = _build_group_deployment(config, "OpZ", "urban")

        kept = MultiUESimulator(self._lanes(deployment, config, jobs)).run(
            config.duration_s, route_ids=[job.route_id for job in jobs]
        )
        streamed = [[] for _ in jobs]
        out = MultiUESimulator(self._lanes(deployment, config, jobs)).run(
            config.duration_s,
            route_ids=[job.route_id for job in jobs],
            keep_traces=False,
            on_record=lambda lane, rec: streamed[lane].append(rec),
        )
        assert out is None
        for trace, records in zip(kept, streamed):
            assert list(trace.records) == records


@pytest.mark.slow
class TestCityScaleSmoke:
    def test_10k_ues_bounded_memory(self, tmp_path):
        config = CityCampaignConfig(
            operators=("OpZ",),
            scenarios=("urban",),
            rats=("5G",),
            ues=10_000,
            cells=24,
            shards=4,
            cohort=512,
            duration_s=2.0,
            dt_s=1.0,
            seed=1,
        )
        result = run_city_campaign(config, state_dir=tmp_path / "state", processes=1)
        assert result.complete
        assert result.n_ues == 10_000
        # streaming aggregation: no per-record lists, so RSS stays bounded
        assert result.peak_rss_mb < 2048.0
        assert result.ues_per_sec > 0
