"""ViVo and MPC-ABR use-case tests."""

import numpy as np
import pytest

from repro.apps import (
    ABRConfig,
    MPCPlayer,
    PAPER_BITRATES_MBPS,
    QoEResult,
    ViVoConfig,
    ViVoSimulator,
    future_mean_bandwidth,
    harmonic_forecaster,
    oracle_forecaster_factory,
    past_mean_bandwidth,
    relative_degradation,
    stall_tail_improvements,
)


def _ca_like_trace(n=6000, dt=0.01, seed=0):
    """Throughput with CC-transition style level shifts, like Fig 7."""
    rng = np.random.default_rng(seed)
    levels = [300.0, 600.0, 900.0, 600.0, 1100.0, 500.0]
    out = np.empty(n)
    seg = n // len(levels)
    for i, level in enumerate(levels):
        lo = i * seg
        hi = n if i == len(levels) - 1 else (i + 1) * seg
        out[lo:hi] = level * rng.uniform(0.85, 1.15, hi - lo)
    return out


class TestBandwidthEstimators:
    def test_future_mean_is_clairvoyant(self):
        tput = np.array([1.0, 2.0, 3.0, 4.0])
        est = future_mean_bandwidth(tput, 1.0, 2.0)
        np.testing.assert_allclose(est, [1.5, 2.5, 3.5, 4.0])

    def test_past_mean_is_causal(self):
        tput = np.array([1.0, 2.0, 3.0, 4.0])
        est = past_mean_bandwidth(tput, 1.0, 2.0)
        np.testing.assert_allclose(est, [1.0, 1.5, 2.5, 3.5])


class TestViVo:
    def test_ideal_beats_stock_on_transition_trace(self):
        tput = _ca_like_trace()
        sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=750.0))
        ideal = sim.run_ideal(tput, 0.01)
        stock = sim.run_stock(tput, 0.01)
        # ideal never stalls more AND achieves at least the stock quality
        assert ideal.stall_time_s <= stock.stall_time_s + 1e-9
        assert ideal.avg_quality >= stock.avg_quality - 0.3

    def test_ideal_near_zero_stalls(self):
        tput = _ca_like_trace()
        sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=750.0))
        ideal = sim.run_ideal(tput, 0.01)
        assert ideal.stall_per_unit_ms < 5.0

    def test_higher_bandwidth_higher_quality(self):
        sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=375.0))
        low = sim.run_ideal(np.full(3000, 100.0), 0.01)
        high = sim.run_ideal(np.full(3000, 400.0), 0.01)
        assert high.avg_quality > low.avg_quality

    def test_quality_bounded_by_ladder(self):
        sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=375.0))
        result = sim.run_ideal(np.full(3000, 10_000.0), 0.01)
        assert result.avg_quality == len(ViVoConfig().quality_fractions) - 1

    def test_estimate_series_must_align(self):
        sim = ViVoSimulator()
        with pytest.raises(ValueError):
            sim.run(np.ones(100), 0.01, np.ones(50))

    def test_trace_too_short_raises(self):
        with pytest.raises(ValueError):
            ViVoSimulator().run_ideal(np.ones(3), 0.01)


class TestMPC:
    def test_paper_ladder(self):
        assert PAPER_BITRATES_MBPS == (1.5, 2.5, 40.71, 152.66, 280.0, 585.0)

    def test_ladder_must_ascend(self):
        with pytest.raises(ValueError):
            ABRConfig(bitrates_mbps=(10.0, 5.0))

    def test_steady_bandwidth_picks_matching_rate(self):
        player = MPCPlayer(ABRConfig(lookahead=2))
        result = player.run(np.full(240, 200.0), 1.0, harmonic_forecaster)
        # MPC rides its buffer between 152.66 and 280, averaging near the
        # link rate with only marginal rebuffering
        assert 120.0 <= result.avg_quality <= 290.0
        assert result.stall_time_s < 0.1 * result.n_units * player.config.chunk_s

    def test_oracle_no_worse_than_harmonic_on_transitions(self):
        tput = _ca_like_trace(n=300, dt=1.0, seed=3)
        player = MPCPlayer(ABRConfig(lookahead=2))
        harmonic = player.run(tput, 1.0, harmonic_forecaster)
        oracle = player.run(tput, 1.0, oracle_forecaster_factory(tput, 1.0, 2.0))
        qoe_h = harmonic.avg_quality - 2.0 * harmonic.stall_time_s
        qoe_o = oracle.avg_quality - 2.0 * oracle.stall_time_s
        assert qoe_o >= qoe_h - 5.0

    def test_low_bandwidth_forces_low_rate(self):
        player = MPCPlayer(ABRConfig(lookahead=2))
        result = player.run(np.full(240, 3.0), 1.0, harmonic_forecaster)
        assert result.avg_quality < 10.0

    def test_buffer_never_negative_stall_accounting(self):
        tput = _ca_like_trace(n=300, dt=1.0, seed=5) / 10.0
        player = MPCPlayer(ABRConfig(lookahead=2))
        result = player.run(tput, 1.0, harmonic_forecaster)
        assert result.stall_time_s >= 0.0
        assert result.n_stalls <= result.n_units

    def test_trace_too_short_raises(self):
        with pytest.raises(ValueError):
            MPCPlayer().run(np.ones(1), 1.0)


class TestQoEMetrics:
    def test_relative_degradation(self):
        ideal = QoEResult(avg_quality=4.0, stall_time_s=1.0, n_stalls=1, n_units=100)
        worse = QoEResult(avg_quality=3.0, stall_time_s=3.0, n_stalls=4, n_units=100)
        deg = relative_degradation(worse, ideal)
        assert deg["quality_drop_pct"] == pytest.approx(25.0)
        assert deg["stall_increase_pct"] == pytest.approx(200.0)

    def test_stall_tail_improvements(self):
        baseline = [10.0] * 90 + [100.0] * 10
        improved = [5.0] * 90 + [40.0] * 10
        gains = stall_tail_improvements(baseline, improved, percentiles=(95.0,))
        assert gains[95.0] > 0

    def test_stall_tail_empty_raises(self):
        with pytest.raises(ValueError):
            stall_tail_improvements([], [1.0])
