"""Windowing, normalization and split tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ALL_SUBDATASETS,
    SubDatasetSpec,
    build_subdataset,
    flatten_for_trees,
    generate_traces,
    normalize_windows,
    random_split,
    trace_level_split,
    window_trace,
    window_traces,
)
from repro.ran import TraceSimulator


@pytest.fixture(scope="module")
def traces():
    return [
        TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(60.0, route_id=s)
        for s in range(3)
    ]


@pytest.fixture(scope="module")
def windows(traces):
    return window_traces(traces, history=10, horizon=10, max_ccs=4)


class TestWindowing:
    def test_shapes(self, windows):
        n = len(windows)
        assert windows.x.shape == (n, 10, 4, windows.x.shape[3])
        assert windows.mask.shape == (n, 10, 4)
        assert windows.y.shape == (n, 10)
        assert windows.y_hist.shape == (n, 10)
        assert windows.y_cc.shape == (n, 10, 4)

    def test_pair_count(self, traces):
        w = window_trace(traces[0], history=10, horizon=10, max_ccs=4)
        x, *_ = w
        assert len(x) == 60 - 10 - 10 + 1

    def test_stride(self, traces):
        dense = window_trace(traces[0], 10, 10, 4, stride=1)[0]
        sparse = window_trace(traces[0], 10, 10, 4, stride=5)[0]
        assert len(sparse) < len(dense)
        np.testing.assert_allclose(sparse[1], dense[5])

    def test_history_future_alignment(self, traces):
        """y must be the continuation of y_hist in trace order."""
        trace = traces[0]
        x, m, y, y_hist, y_cc = window_trace(trace, 10, 10, 4)
        series = trace.throughput_series()
        np.testing.assert_allclose(y_hist[0], series[:10])
        np.testing.assert_allclose(y[0], series[10:20])
        np.testing.assert_allclose(y_hist[3], series[3:13])

    def test_per_cc_targets_sum_close_to_total(self, windows):
        """Per-CC future tputs sum to the aggregate (up to dropped CCs)."""
        sums = windows.y_cc.sum(axis=2)
        assert np.mean(np.abs(sums - windows.y)) < 1e-6 * max(1.0, np.abs(windows.y).max()) + 1.0

    def test_too_short_trace_returns_none(self):
        trace = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=0).run(5.0)
        assert window_trace(trace, 10, 10, 4) is None

    def test_invalid_sizes(self, traces):
        with pytest.raises(ValueError):
            window_trace(traces[0], 0, 10, 4)

    def test_flatten_for_trees_width(self, windows):
        flat = flatten_for_trees(windows)
        t, c, f = windows.x.shape[1:]
        assert flat.shape == (len(windows), t * c * f + t * c + t)


class TestNormalization:
    def test_targets_in_unit_interval(self, windows):
        ds = normalize_windows(windows)
        assert ds.windows.y.min() >= -1e-9
        assert ds.windows.y.max() <= 1.0 + 1e-9

    def test_denormalize_roundtrip(self, windows):
        ds = normalize_windows(windows)
        restored = ds.denormalize_tput(ds.windows.y)
        np.testing.assert_allclose(restored, windows.y, atol=1e-9)

    def test_mask_not_scaled(self, windows):
        ds = normalize_windows(windows)
        np.testing.assert_allclose(ds.windows.mask, windows.mask)


class TestSplits:
    def test_random_split_ratios(self, windows):
        train, val, test = random_split(windows, 0.5, 0.2, 0.3, seed=0)
        n = len(windows)
        assert len(train) == int(0.5 * n)
        assert len(val) == int(0.2 * n)
        assert len(train) + len(val) + len(test) == n

    def test_random_split_disjoint(self, windows):
        train, val, test = random_split(windows, 0.5, 0.2, 0.3, seed=0)
        # windows overlap in time, but indices must be disjoint:
        # reconstruct indices via y matching is fragile; instead check counts
        assert len({id(train), id(val), id(test)}) == 3

    def test_split_deterministic(self, windows):
        a = random_split(windows, seed=5)[0]
        b = random_split(windows, seed=5)[0]
        np.testing.assert_allclose(a.y, b.y)

    def test_invalid_ratios(self, windows):
        with pytest.raises(ValueError):
            random_split(windows, 0.5, 0.2, 0.2)

    def test_trace_level_split_no_leakage(self, windows):
        train, val, test = trace_level_split(windows, 0.4, 0.2, 0.4, seed=0)
        assert set(np.unique(train.trace_ids)).isdisjoint(np.unique(test.trace_ids))
        assert len(train) + len(val) + len(test) == len(windows)

    def test_trace_level_split_needs_traces(self, traces):
        single = window_traces(traces[:1], 10, 10, 4)
        with pytest.raises(ValueError):
            trace_level_split(single, 0.9, 0.05, 0.05, seed=0)


class TestSubDatasets:
    def test_spec_timescales(self):
        assert SubDatasetSpec("OpZ", "walking", "short").dt_s == 0.01
        assert SubDatasetSpec("OpZ", "walking", "long").dt_s == 1.0

    def test_all_twelve_specs(self):
        assert len(ALL_SUBDATASETS) == 12
        names = {s.name for s in ALL_SUBDATASETS}
        assert len(names) == 12

    def test_generate_traces_metadata(self):
        spec = SubDatasetSpec("OpX", "walking", "long")
        ts = generate_traces(spec, n_traces=2, samples_per_trace=30, seed=0)
        assert len(ts) == 2
        assert all(t.operator == "OpX" for t in ts)
        assert all(len(t) == 30 for t in ts)

    def test_build_subdataset_end_to_end(self):
        spec = SubDatasetSpec("OpZ", "driving", "long")
        ds = build_subdataset(spec, n_traces=2, samples_per_trace=40, seed=0)
        assert len(ds.windows) == 2 * (40 - 19)
        assert ds.spec == spec
