"""PHY numerics tests: RB tables, MCS/CQI, TBS (TS 38.214)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ran import (
    MAX_CQI,
    MAX_MCS_INDEX,
    cqi_from_sinr,
    duplex_dl_duty,
    mcs_from_cqi,
    mcs_spectral_efficiency,
    mcs_to_modulation_coding,
    num_resource_blocks,
    phy_throughput_mbps,
    resource_elements,
    slot_duration_s,
    transport_block_size,
)


class TestNumerology:
    @pytest.mark.parametrize("scs,expected_ms", [(15, 1.0), (30, 0.5), (60, 0.25), (120, 0.125)])
    def test_slot_duration(self, scs, expected_ms):
        assert slot_duration_s(scs) == pytest.approx(expected_ms * 1e-3)

    def test_unknown_scs_raises(self):
        with pytest.raises(ValueError):
            slot_duration_s(45)


class TestResourceBlocks:
    @pytest.mark.parametrize(
        "bw,scs,expected",
        [(100, 30, 273), (40, 30, 106), (60, 30, 162), (20, 15, 106), (20, 30, 51), (100, 120, 66)],
    )
    def test_3gpp_table_values(self, bw, scs, expected):
        assert num_resource_blocks(bw, scs) == expected

    @pytest.mark.parametrize("bw,expected", [(20, 100), (10, 50), (5, 25)])
    def test_lte_table(self, bw, expected):
        assert num_resource_blocks(bw, 15, rat="4G") == expected

    def test_unknown_lte_bandwidth_raises(self):
        with pytest.raises(ValueError):
            num_resource_blocks(7, 15, rat="4G")

    def test_nrb_monotone_in_bandwidth(self):
        widths = [5, 10, 20, 40, 60, 80, 100]
        rbs = [num_resource_blocks(w, 30) for w in widths]
        assert rbs == sorted(rbs)


class TestMcsCqi:
    def test_mcs_table_monotone_efficiency(self):
        effs = [mcs_spectral_efficiency(i) for i in range(MAX_MCS_INDEX + 1)]
        assert effs == sorted(effs)

    def test_mcs_bounds(self):
        with pytest.raises(ValueError):
            mcs_to_modulation_coding(-1)
        with pytest.raises(ValueError):
            mcs_to_modulation_coding(MAX_MCS_INDEX + 1)

    def test_top_mcs_is_256qam(self):
        qm, rate = mcs_to_modulation_coding(MAX_MCS_INDEX)
        assert qm == 8
        assert rate == pytest.approx(948 / 1024)

    def test_cqi_monotone_in_sinr(self):
        sinrs = np.linspace(-10, 40, 26)
        cqis = [cqi_from_sinr(s) for s in sinrs]
        assert cqis == sorted(cqis)
        assert cqis[0] == 0
        assert cqis[-1] == MAX_CQI

    def test_mcs_from_cqi_monotone(self):
        mcss = [mcs_from_cqi(c) for c in range(MAX_CQI + 1)]
        assert mcss == sorted(mcss)

    def test_mcs_from_cqi_bounds(self):
        with pytest.raises(ValueError):
            mcs_from_cqi(MAX_CQI + 1)


class TestTBS:
    def test_resource_elements_capped_at_156_per_prb(self):
        assert resource_elements(10, n_symbols=14, overhead_re_per_prb=0) == 1560

    def test_resource_elements_validation(self):
        with pytest.raises(ValueError):
            resource_elements(-1)
        with pytest.raises(ValueError):
            resource_elements(10, n_symbols=15)

    def test_zero_prb_gives_zero(self):
        assert transport_block_size(10, 0) == 0

    def test_small_tbs_from_standard_table(self):
        """Tiny allocations must land on TS 38.214 Table 5.1.3.2-1 values."""
        from repro.ran.phy import _TBS_TABLE_SMALL

        tbs = transport_block_size(0, 1)
        assert tbs in _TBS_TABLE_SMALL

    def test_large_tbs_byte_aligned(self):
        tbs = transport_block_size(27, 273, n_layers=4)
        assert (tbs + 24) % 8 == 0
        assert tbs > 1_000_000  # ~1.2 Mbit/slot for 100 MHz, 4 layers

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            transport_block_size(10, 50, n_layers=0)
        with pytest.raises(ValueError):
            transport_block_size(10, 50, n_layers=9)

    @settings(max_examples=40, deadline=None)
    @given(
        mcs=st.integers(0, MAX_MCS_INDEX),
        n_prb=st.integers(1, 273),
        layers=st.integers(1, 4),
    )
    def test_tbs_monotone_in_layers_and_prbs(self, mcs, n_prb, layers):
        """More PRBs or layers can never shrink the transport block."""
        base = transport_block_size(mcs, n_prb, layers)
        assert transport_block_size(mcs, n_prb + 10, layers) >= base
        if layers < 4:
            assert transport_block_size(mcs, n_prb, layers + 1) >= base

    @settings(max_examples=40, deadline=None)
    @given(mcs=st.integers(0, MAX_MCS_INDEX - 1), n_prb=st.integers(4, 273))
    def test_tbs_monotone_in_mcs(self, mcs, n_prb):
        assert transport_block_size(mcs + 1, n_prb, 2) >= transport_block_size(mcs, n_prb, 2)

    def test_tbs_close_to_ninfo(self):
        """Quantization error stays within a few percent for large blocks."""
        from repro.ran.phy import resource_elements as re_fn

        mcs, n_prb, layers = 20, 200, 2
        qm, r = mcs_to_modulation_coding(mcs)
        n_info = re_fn(n_prb) * r * qm * layers
        tbs = transport_block_size(mcs, n_prb, layers)
        assert abs(tbs - n_info) / n_info < 0.05


class TestThroughput:
    def test_fdd_vs_tdd_duty(self):
        assert duplex_dl_duty("FDD") == 1.0
        assert 0.5 < duplex_dl_duty("TDD") < 1.0
        with pytest.raises(ValueError):
            duplex_dl_duty("XDD")

    def test_peak_100mhz_throughput_plausible(self):
        """100 MHz n41, 4 layers, top MCS ~= 1.6-2.4 Gbps pre-duty."""
        tput = phy_throughput_mbps(27, 273, 4, 30, dl_duty=1.0)
        assert 1_600 < tput < 2_600

    def test_bler_scales_throughput(self):
        clean = phy_throughput_mbps(10, 100, 2, 30)
        lossy = phy_throughput_mbps(10, 100, 2, 30, bler=0.5)
        assert lossy == pytest.approx(0.5 * clean)

    def test_invalid_bler(self):
        with pytest.raises(ValueError):
            phy_throughput_mbps(10, 100, 2, 30, bler=1.0)

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            phy_throughput_mbps(10, 100, 2, 30, dl_duty=0.0)
