"""Forecast metrics and theoretical-capacity tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forecast import bias, forecast_report, horizon_rmse, mase, smape
from repro.ran import (
    ChannelSpec,
    aggregate_capacity_mbps,
    channel_capacity_mbps,
    simulate_stationary_ideal,
    utilization,
)


class TestForecastMetrics:
    def _data(self):
        rng = np.random.default_rng(0)
        target = rng.uniform(100, 500, size=(50, 10))
        pred = target + rng.normal(0, 20, size=(50, 10))
        history = rng.uniform(100, 500, size=(50, 10))
        return pred, target, history

    def test_horizon_rmse_shape(self):
        pred, target, _ = self._data()
        curve = horizon_rmse(pred, target)
        assert curve.shape == (10,)
        assert np.all(curve > 0)

    def test_horizon_rmse_requires_2d(self):
        with pytest.raises(ValueError):
            horizon_rmse(np.zeros(5), np.zeros(5))

    def test_smape_bounds(self):
        pred, target, _ = self._data()
        value = smape(pred, target)
        assert 0.0 <= value <= 200.0

    def test_smape_zero_when_equal(self):
        target = np.ones((3, 4)) * 100
        assert smape(target, target) == pytest.approx(0.0)

    def test_mase_below_one_beats_persistence(self):
        _, target, history = self._data()
        assert mase(target, target, history) == 0.0
        naive = np.repeat(history[:, -1:], target.shape[1], axis=1)
        assert mase(naive, target, history) == pytest.approx(1.0)

    def test_mase_alignment_check(self):
        pred, target, history = self._data()
        with pytest.raises(ValueError):
            mase(pred, target, history[:10])

    def test_bias_sign(self):
        target = np.full((4, 3), 100.0)
        assert bias(target + 5.0, target) == pytest.approx(5.0)
        assert bias(target - 5.0, target) == pytest.approx(-5.0)

    def test_report_keys(self):
        pred, target, history = self._data()
        report = forecast_report(pred, target, history)
        assert set(report) == {"rmse", "smape_pct", "mase", "bias"}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1000))
    def test_smape_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(1, 100, size=(5, 3))
        b = rng.uniform(1, 100, size=(5, 3))
        assert smape(a, b) == pytest.approx(smape(b, a))


class TestCapacity:
    def test_n41_100mhz_capacity_plausible(self):
        """100 MHz TDD mid-band, 4 layers: ~1.3-1.8 Gbps sustained."""
        capacity = channel_capacity_mbps(ChannelSpec("n41", 100))
        assert 1_200 < capacity < 1_900

    def test_fdd_beats_tdd_at_same_bandwidth(self):
        fdd = channel_capacity_mbps(ChannelSpec("n25", 20))
        tdd = channel_capacity_mbps(ChannelSpec("n41", 20))
        assert fdd > tdd

    def test_lte_layer_cap(self):
        """4G capacity uses at most 2 layers even if more are requested."""
        two = channel_capacity_mbps(ChannelSpec("b2", 20, n_layers=2))
        four = channel_capacity_mbps(ChannelSpec("b2", 20, n_layers=4))
        assert two == four

    def test_aggregate_is_sum(self):
        specs = [ChannelSpec("n41", 100), ChannelSpec("n25", 20)]
        total = aggregate_capacity_mbps(specs)
        assert total == pytest.approx(sum(channel_capacity_mbps(s) for s in specs))

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_capacity_mbps([])

    def test_measured_below_theoretical(self):
        """Fig 6's premise: real aggregates sit below the theoretical sum."""
        trace = simulate_stationary_ideal(
            "OpZ", duration_s=10.0, seed=3, band_lock=["n41@2500", "n25"], max_ccs_override=2
        )
        specs = [ChannelSpec("n41", 100), ChannelSpec("n25", 20)]
        ratio = utilization(trace.throughput_series().mean(), specs)
        assert 0.0 < ratio < 1.0

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            utilization(-1.0, [ChannelSpec("n41", 100)])
