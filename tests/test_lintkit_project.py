"""The whole-program half of repro.lintkit: facts, linking, RL008-RL012,
the incremental cache, ``--changed-only``, SARIF output and the
``--fix-catalog`` rework.

Each project rule gets a multi-file pass/fail fixture pair exercising
the cross-module resolution it depends on (aliased imports, same-module
calls, caller closure).  The cache tests prove the second run serves
per-file diagnostics *and* project-rule facts without re-parsing, and
that suppressions survive the cached path.
"""

import json

import pytest

from repro.lintkit import (
    ModuleFacts,
    ProjectContext,
    extract_module_facts,
    lint_paths,
    registered_checkers,
)
from repro.lintkit import runner as runner_mod
from repro.lintkit.catalog import load_catalog, write_catalog
from repro.lintkit.checkers import ObsCatalogChecker
from repro.lintkit.runner import (
    LintResult,
    _fix_catalog,
    build_context,
    changed_files,
    module_name_for,
    run_cli,
)

# ---------------------------------------------------------------------------
# helpers


def lint_project(tmp_path, files, rules):
    proj = tmp_path / "proj"
    proj.mkdir(exist_ok=True)
    for name, source in files.items():
        (proj / name).write_text(source, encoding="utf-8")
    return lint_paths([proj], rules=rules, catalog_mode="off")


def codes(result):
    return sorted({d.code for d in result.diagnostics})


# ---------------------------------------------------------------------------
# RL008 rng-lineage


class TestRngLineage:
    def test_wallclock_seed_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "import numpy as np\n"
                    "def f():\n"
                    "    return np.random.default_rng(int(time.time()))\n"
                )
            },
            rules=["RL008"],
        )
        assert codes(result) == ["RL008"]
        assert "canonical_hash" in result.diagnostics[0].message

    def test_threaded_seed_and_canonical_hash_pass(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "from repro.runtime import canonical_hash\n"
                    "def f(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                    "def g(cfg):\n"
                    "    return np.random.default_rng(canonical_hash(cfg))\n"
                )
            },
            rules=["RL008"],
        )
        assert result.ok, result.to_text()

    def test_seed_traced_through_project_helper(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "from repro.runtime import canonical_hash\n"
                    "def derive(cfg):\n"
                    "    return canonical_hash(cfg)\n"
                    "def f(cfg):\n"
                    "    return np.random.default_rng(derive(cfg))\n"
                )
            },
            rules=["RL008"],
        )
        assert result.ok, result.to_text()

    def test_helper_with_untraced_return_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "import numpy as np\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                    "def f():\n"
                    "    return np.random.default_rng(stamp())\n"
                )
            },
            rules=["RL008"],
        )
        assert codes(result) == ["RL008"]
        assert "stamp()" in result.diagnostics[0].message

    def test_unresolvable_seed_source_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    return np.random.default_rng(mystery())\n"
                )
            },
            rules=["RL008"],
        )
        assert codes(result) == ["RL008"]
        assert "cannot be traced" in result.diagnostics[0].message

    def test_suppression_silences_project_rule(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "import numpy as np\n"
                    "def f():\n"
                    "    return np.random.default_rng(int(time.time()))  # lint: disable=RL008\n"
                )
            },
            rules=["RL008"],
        )
        assert result.ok, result.to_text()


# ---------------------------------------------------------------------------
# RL009 determinism-ordering


class TestDeterminismOrdering:
    def test_set_iteration_in_hash_closure_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "from repro.runtime import canonical_hash\n"
                    "def collect(items):\n"
                    "    out = []\n"
                    "    for item in {1, 2, 3}:\n"
                    "        out.append(item)\n"
                    "    return out\n"
                    "def make_key(cfg):\n"
                    "    return canonical_hash(collect(cfg))\n"
                )
            },
            rules=["RL009"],
        )
        assert codes(result) == ["RL009"]
        assert "hash-critical" in result.diagnostics[0].message

    def test_sorted_set_iteration_passes(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "from repro.runtime import canonical_hash\n"
                    "def collect(items):\n"
                    "    return [item for item in sorted({1, 2, 3})]\n"
                    "def make_key(cfg):\n"
                    "    return canonical_hash(collect(cfg))\n"
                )
            },
            rules=["RL009"],
        )
        assert result.ok, result.to_text()

    def test_set_iteration_off_hash_path_passes(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "def unrelated(items):\n"
                    "    for item in {1, 2}:\n"
                    "        print(item)\n"
                )
            },
            rules=["RL009"],
        )
        assert result.ok, result.to_text()

    def test_shardplan_methods_are_seeds(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "class ShardPlan:\n"
                    "    def assign(self, ues):\n"
                    "        return [u for u in set(ues)]\n"
                )
            },
            rules=["RL009"],
        )
        assert codes(result) == ["RL009"]


# ---------------------------------------------------------------------------
# RL010 dtype-discipline


class TestDtypeDiscipline:
    def test_mixed_precision_primitive_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "kern.py": (
                    "import numpy as np\n"
                    'PRIMITIVES = ("affine_forward",)\n'
                    "def affine_forward(x, weight):\n"
                    "    a = np.float32(1.0)\n"
                    "    b = np.float64(2.0)\n"
                    "    return x * a + b\n"
                )
            },
            rules=["RL010"],
        )
        assert codes(result) == ["RL010"]
        assert "affine_forward" in result.diagnostics[0].message

    def test_explicit_astype_passes(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "kern.py": (
                    "import numpy as np\n"
                    'PRIMITIVES = ("affine_forward",)\n'
                    "def affine_forward(x, weight):\n"
                    "    a = np.float32(1.0)\n"
                    "    return (x * a).astype(np.float64)\n"
                )
            },
            rules=["RL010"],
        )
        assert result.ok, result.to_text()

    def test_non_primitive_function_exempt(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "kern.py": (
                    "import numpy as np\n"
                    'PRIMITIVES = ("affine_forward",)\n'
                    "def helper(x):\n"
                    "    return np.float32(1.0) + np.float64(2.0)\n"
                )
            },
            rules=["RL010"],
        )
        assert result.ok, result.to_text()


# ---------------------------------------------------------------------------
# RL011 paired-resource


class TestPairedResource:
    def test_span_leak_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "from repro import obs\n"
                    "def leaky():\n"
                    '    s = obs.span("demo.step")\n'
                    "    return 1\n"
                )
            },
            rules=["RL011"],
        )
        assert codes(result) == ["RL011"]
        assert "with" in result.diagnostics[0].message

    def test_with_block_return_and_force_pass(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "from repro import obs\n"
                    "def fine():\n"
                    '    with obs.span("demo.step"):\n'
                    "        pass\n"
                    "def forced():\n"
                    '    obs.span("demo.step", force=True)\n'
                    "def handed_back():\n"
                    '    return obs.span("demo.step")\n'
                )
            },
            rules=["RL011"],
        )
        assert result.ok, result.to_text()

    def test_regex_match_span_not_flagged(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import re\n"
                    "def f(text):\n"
                    '    m = re.match(r"x", text)\n'
                    "    m.span(0)\n"
                )
            },
            rules=["RL011"],
        )
        assert result.ok, result.to_text()

    def test_unbalanced_arena_open_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "arena_mod.py": "def begin_step():\n    pass\ndef end_run():\n    pass\n",
                "user.py": (
                    "from arena_mod import begin_step, end_run\n"
                    "def leaky():\n"
                    "    begin_step()\n"
                ),
            },
            rules=["RL011"],
        )
        assert codes(result) == ["RL011"]
        assert "finally" in result.diagnostics[0].message

    def test_arena_closed_locally_or_by_every_caller_passes(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "arena_mod.py": "def begin_step():\n    pass\ndef end_run():\n    pass\n",
                "user.py": (
                    "from arena_mod import begin_step, end_run\n"
                    "def balanced():\n"
                    "    begin_step()\n"
                    "    try:\n"
                    "        pass\n"
                    "    finally:\n"
                    "        end_run()\n"
                    "def opener():\n"
                    "    begin_step()\n"
                    "def driver():\n"
                    "    opener()\n"
                    "    try:\n"
                    "        pass\n"
                    "    finally:\n"
                    "        end_run()\n"
                ),
            },
            rules=["RL011"],
        )
        assert result.ok, result.to_text()


# ---------------------------------------------------------------------------
# RL012 registry-coverage


class TestRegistryCoverage:
    def test_duplicate_registration_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "class Prophet:\n"
                    "    pass\n"
                    'register_predictor("Prophet", Prophet)\n'
                    'register_predictor("Prophet", Prophet)\n'
                )
            },
            rules=["RL012"],
        )
        assert codes(result) == ["RL012"]
        assert "more than once" in result.diagnostics[0].message

    def test_unresolvable_factory_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {"mod.py": 'register_predictor("Ghost", missing_factory)\n'},
            rules=["RL012"],
        )
        assert codes(result) == ["RL012"]
        assert "missing_factory" in result.diagnostics[0].message

    def test_registration_unreachable_from_cli_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "cli.py": "import alpha\n",
                "alpha.py": "class A:\n    pass\nregister_predictor('A', A)\n",
                "beta.py": "class B:\n    pass\nregister_predictor('B', B)\n",
            },
            rules=["RL012"],
        )
        assert codes(result) == ["RL012"]
        assert "cannot see" in result.diagnostics[0].message
        assert "'B'" in result.diagnostics[0].message

    def test_transitively_reachable_registration_passes(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "cli.py": "import alpha\n",
                "alpha.py": "import beta\n",
                "beta.py": "class B:\n    pass\nregister_predictor('B', B)\n",
            },
            rules=["RL012"],
        )
        assert result.ok, result.to_text()

    def test_lineup_entry_without_registration_fails(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "class A:\n"
                    "    pass\n"
                    'register_predictor("A", A)\n'
                    'TABLE4_LINEUP = ["A", "Nope"]\n'
                )
            },
            rules=["RL012"],
        )
        assert codes(result) == ["RL012"]
        assert "'Nope'" in result.diagnostics[0].message

    def test_decorator_registration_passes(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "mod.py": (
                    '@register_predictor("A")\n'
                    "class A:\n"
                    "    pass\n"
                )
            },
            rules=["RL012"],
        )
        assert result.ok, result.to_text()


# ---------------------------------------------------------------------------
# module-name resolution edge cases


class TestModuleNameResolution:
    def test_file_inside_repro_tree(self, tmp_path):
        assert module_name_for(tmp_path / "src" / "repro" / "ran" / "ca.py") == "repro.ran.ca"

    def test_package_init_maps_to_package(self, tmp_path):
        assert module_name_for(tmp_path / "repro" / "obs" / "__init__.py") == "repro.obs"

    def test_dunder_main_is_kept(self, tmp_path):
        path = tmp_path / "repro" / "lintkit" / "__main__.py"
        assert module_name_for(path) == "repro.lintkit.__main__"

    def test_namespace_package_needs_no_init(self, tmp_path):
        # no __init__.py anywhere on disk; naming is purely path-based
        path = tmp_path / "repro" / "nsp" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n", encoding="utf-8")
        assert module_name_for(path) == "repro.nsp.mod"
        assert build_context(path).module == "repro.nsp.mod"

    def test_file_outside_any_repro_tree_falls_back_to_stem(self, tmp_path):
        assert module_name_for(tmp_path / "scripts" / "tool.py") == "tool"

    def test_nested_repro_uses_innermost(self, tmp_path):
        path = tmp_path / "repro" / "vendor" / "repro" / "core.py"
        assert module_name_for(path) == "repro.core"


# ---------------------------------------------------------------------------
# incremental cache


_BAD_SEED = (
    "import time\n"
    "import numpy as np\n"
    "def f():\n"
    "    return np.random.default_rng(int(time.time()))\n"
)


class TestIncrementalCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "mod.py").write_text("import hashlib\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        cold = lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        assert cold.cache_hits == 0 and codes(cold) == ["RL003"]
        assert cache.exists()
        warm = lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        assert warm.cache_hits == 1
        assert sorted(warm.diagnostics) == sorted(cold.diagnostics)

    def test_edit_invalidates_only_that_file(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "a.py").write_text("import hashlib\n", encoding="utf-8")
        (proj / "b.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        (proj / "a.py").write_text("import hashlib as h\n", encoding="utf-8")
        warm = lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        assert warm.cache_hits == 1  # b.py only
        assert codes(warm) == ["RL003"]

    def test_rule_subset_change_misses(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "mod.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        other = lint_paths([proj], rules=["RL006"], catalog_mode="off", cache_path=cache)
        assert other.cache_hits == 0

    def test_project_rules_fire_from_cached_facts(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "mod.py").write_text(_BAD_SEED, encoding="utf-8")
        cache = tmp_path / "cache.json"
        cold = lint_paths([proj], rules=["RL008"], catalog_mode="off", cache_path=cache)
        warm = lint_paths([proj], rules=["RL008"], catalog_mode="off", cache_path=cache)
        assert warm.cache_hits == 1
        assert codes(cold) == codes(warm) == ["RL008"]
        assert sorted(warm.diagnostics) == sorted(cold.diagnostics)

    def test_suppressions_survive_the_cached_path(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "mod.py").write_text(
            _BAD_SEED.replace("time.time()))", "time.time()))  # lint: disable=RL008"),
            encoding="utf-8",
        )
        cache = tmp_path / "cache.json"
        cold = lint_paths([proj], rules=["RL008"], catalog_mode="off", cache_path=cache)
        warm = lint_paths([proj], rules=["RL008"], catalog_mode="off", cache_path=cache)
        assert warm.cache_hits == 1
        assert cold.ok and warm.ok

    def test_repro_no_cache_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "mod.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        assert not cache.exists()

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "mod.py").write_text("import hashlib\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        result = lint_paths([proj], rules=["RL003"], catalog_mode="off", cache_path=cache)
        assert result.cache_hits == 0 and codes(result) == ["RL003"]


# ---------------------------------------------------------------------------
# --changed-only


class TestChangedOnly:
    def test_filters_to_git_modified_files(self, tmp_path, monkeypatch):
        proj = tmp_path / "proj"
        proj.mkdir()
        a = proj / "a.py"
        a.write_text("import hashlib\n", encoding="utf-8")
        (proj / "b.py").write_text("import hashlib\n", encoding="utf-8")
        monkeypatch.setattr(runner_mod, "changed_files", lambda: {a.resolve()})
        result = lint_paths([proj], rules=["RL003"], catalog_mode="off", changed_only=True)
        assert len(result.diagnostics) == 1
        assert result.diagnostics[0].path.endswith("a.py")

    def test_git_unavailable_means_no_filtering(self, tmp_path, monkeypatch):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "a.py").write_text("import hashlib\n", encoding="utf-8")
        monkeypatch.setattr(runner_mod, "changed_files", lambda: None)
        result = lint_paths([proj], rules=["RL003"], catalog_mode="off", changed_only=True)
        assert len(result.diagnostics) == 1

    def test_changed_files_none_when_git_fails(self, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("no git")

        monkeypatch.setattr(runner_mod.subprocess, "run", boom)
        assert changed_files() is None


# ---------------------------------------------------------------------------
# SARIF


class TestSarif:
    def test_document_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import hashlib\n", encoding="utf-8")
        result = lint_paths([bad], rules=["RL003"], catalog_mode="off")
        doc = json.loads(result.to_sarif())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(registered_checkers())
        finding = run["results"][0]
        assert finding["ruleId"] == "RL003"
        region = finding["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1 and region["startColumn"] >= 1

    def test_cli_format_sarif(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import hashlib\n", encoding="utf-8")
        assert run_cli([str(bad), "--format", "sarif", "--no-cache"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "RL003"

    def test_clean_run_has_empty_results(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")
        result = lint_paths([good], rules=["RL003"], catalog_mode="off")
        doc = json.loads(result.to_sarif())
        assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# --fix-catalog rework


class TestFixCatalog:
    def test_prunes_manual_entries_whose_modules_vanished(self, tmp_path):
        catalog = tmp_path / "catalog.json"
        write_catalog(
            catalog,
            {},
            manual={
                "ghost.metric": {"kinds": ["counter"], "modules": ["ghost.mod"]},
                "live.metric": {"kinds": ["counter"], "modules": ["alpha"]},
            },
        )
        checker = ObsCatalogChecker()
        facts = [ModuleFacts(module="alpha", package="", display_path="alpha.py")]
        result = LintResult()
        _fix_catalog(catalog, checker, facts, covering_root=True, result=result)
        assert result.catalog_pruned == ["ghost.metric"]
        data = load_catalog(catalog)
        assert "live.metric" in data["manual"]
        assert "ghost.metric" not in data["manual"]

    def test_partial_fix_preserves_other_modules_and_stays_red(self, tmp_path):
        # the catalog says demo.hits is also published by other_mod; a
        # partial fix over mod.py alone must neither drop other_mod nor
        # report success while the drift it saw is still unexplained
        catalog = tmp_path / "catalog.json"
        write_catalog(
            catalog,
            {"demo.hits": {"kinds": ["counter"], "modules": ["mod", "other_mod"]}},
        )
        snippet = tmp_path / "mod.py"
        snippet.write_text("from repro import obs\nobs.counter('demo.hits')\n", encoding="utf-8")
        before = catalog.read_text(encoding="utf-8")
        result = lint_paths([snippet], rules=["RL005"], catalog_mode="fix", catalog_path=catalog)
        assert catalog.read_text(encoding="utf-8") == before  # regeneration was a no-op
        assert not result.ok
        assert "drifted" in result.diagnostics[0].message

    def test_partial_fix_unions_new_names_into_harvest(self, tmp_path):
        catalog = tmp_path / "catalog.json"
        write_catalog(
            catalog,
            {"old.name": {"kinds": ["counter"], "modules": ["elsewhere"]}},
        )
        snippet = tmp_path / "mod.py"
        snippet.write_text("from repro import obs\nobs.counter('demo.hits')\n", encoding="utf-8")
        lint_paths([snippet], rules=["RL005"], catalog_mode="fix", catalog_path=catalog)
        data = load_catalog(catalog)
        assert "old.name" in data["harvested"]  # a partial run cannot prove it dead
        assert "demo.hits" in data["harvested"]


# ---------------------------------------------------------------------------
# the facts layer round-trips


class TestFactsRoundTrip:
    def test_module_facts_survive_json(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(_BAD_SEED, encoding="utf-8")
        facts = extract_module_facts(build_context(path))
        clone = ModuleFacts.from_json(json.loads(json.dumps(facts.to_json())))
        assert clone.to_json() == facts.to_json()

    def test_project_context_links_reloaded_facts(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(_BAD_SEED, encoding="utf-8")
        facts = extract_module_facts(build_context(path))
        clone = ModuleFacts.from_json(facts.to_json())
        project = ProjectContext([clone])
        seeds = [s for _, fn in project.iter_functions() for s in fn.seed_sites]
        assert [s.status for s in seeds] == ["bad"]
