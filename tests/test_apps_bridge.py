"""Predictor-to-application bridge tests."""

import numpy as np
import pytest

from repro.apps import (
    predicted_bandwidth_series,
    predictor_forecaster,
    trace_windows_normalized,
)
from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.ran import TraceSimulator


@pytest.fixture(scope="module")
def trained():
    spec = SubDatasetSpec("OpZ", "driving", "long")
    dataset = build_subdataset(spec, n_traces=3, samples_per_trace=100, seed=5)
    train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
    predictor = Prism5GPredictor(DeepConfig(hidden=10, max_epochs=5, patience=5))
    predictor.fit(train, val)
    return predictor, dataset


@pytest.fixture(scope="module")
def fresh_trace():
    return TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=77).run(80.0)


class TestTraceWindows:
    def test_normalized_windows_match_dataset_layout(self, trained, fresh_trace):
        _, dataset = trained
        windows = trace_windows_normalized(fresh_trace, dataset)
        assert windows is not None
        assert windows.x.shape[1:] == dataset.windows.x.shape[1:]
        assert windows.y_cc is not None

    def test_short_trace_returns_none(self, trained):
        _, dataset = trained
        short = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=78).run(5.0)
        assert trace_windows_normalized(short, dataset) is None


class TestBandwidthSeries:
    def test_series_aligned_and_finite(self, trained, fresh_trace):
        predictor, dataset = trained
        series = predicted_bandwidth_series(predictor, fresh_trace, dataset)
        assert series.shape == fresh_trace.throughput_series().shape
        assert np.all(np.isfinite(series))
        assert np.all(series >= 0.0)

    def test_fallback_for_short_trace(self, trained):
        predictor, dataset = trained
        short = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=79).run(8.0)
        series = predicted_bandwidth_series(predictor, short, dataset)
        assert series.shape == (8,)

    def test_estimates_in_plausible_mbps_range(self, trained, fresh_trace):
        predictor, dataset = trained
        series = predicted_bandwidth_series(predictor, fresh_trace, dataset)
        actual = fresh_trace.throughput_series()
        # barely-trained model: just require the right order of magnitude
        assert series[15:].mean() < 10 * actual.mean() + 100


class TestForecaster:
    def test_forecaster_contract(self, trained, fresh_trace):
        predictor, dataset = trained
        forecaster = predictor_forecaster(predictor, fresh_trace, dataset, chunk_s=2.0)
        out = forecaster(np.array([100.0, 200.0]), 3, 2.0)
        assert out.shape == (3,)
        assert np.all(out > 0)

    def test_forecaster_advances_with_history(self, trained, fresh_trace):
        predictor, dataset = trained
        forecaster = predictor_forecaster(predictor, fresh_trace, dataset, chunk_s=2.0)
        early = forecaster(np.array([100.0]), 1, 2.0)
        later = forecaster(np.full(20, 100.0), 1, 2.0)
        # different positions along the trace give (generally) different values
        assert early.shape == later.shape == (1,)
