"""Tests for repro.parallel.run_tasks: retry, timeout classification, failure."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import obs
from repro.parallel import run_tasks


def _square(x):
    return x * x


def _fail_once(flag_path):
    """Fail on the first call, succeed afterwards (flag file = "already failed")."""
    path = Path(flag_path)
    if not path.exists():
        path.write_text("failed")
        raise RuntimeError("transient crash")
    return "ok"


def _always_fail(x):
    raise ValueError(f"broken-{x}")


@pytest.fixture()
def metrics_obs():
    obs.configure(mode=obs.MODE_METRICS)
    obs.reset()
    yield
    obs.configure(mode=obs.MODE_OFF)


class TestRunTasks:
    def test_order_preserving(self):
        assert run_tasks(_square, [3, 1, 4, 1, 5], processes=1) == [9, 1, 16, 1, 25]

    def test_empty(self):
        assert run_tasks(_square, [], processes=1) == []

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            run_tasks(_square, [1, 2], labels=["only-one"], processes=1)

    def test_crash_retried_once(self, tmp_path, metrics_obs):
        flag = tmp_path / "crashed.flag"
        out = run_tasks(
            _fail_once, [str(flag)], labels=["shard-0000"], processes=1, retries=1
        )
        assert out == ["ok"]
        counters = obs.snapshot()["counters"]
        assert counters.get("parallel.shard.retry") == 1
        assert "parallel.shard.failed" not in counters

    def test_twice_failing_raises_naming_shard(self, tmp_path, metrics_obs):
        with pytest.raises(RuntimeError, match="shard-0007"):
            run_tasks(
                _always_fail, [7], labels=["shard-0007"], processes=1, retries=1
            )
        counters = obs.snapshot()["counters"]
        assert counters.get("parallel.shard.retry") == 1
        assert counters.get("parallel.shard.failed") == 1

    def test_pool_path_retry(self, tmp_path, metrics_obs):
        """With a pool, a crashing worker is resubmitted and succeeds."""
        flags = [str(tmp_path / "a.flag"), str(tmp_path / "b.flag")]
        out = run_tasks(
            _fail_once,
            flags,
            labels=["shard-0000", "shard-0001"],
            processes=2,
            retries=1,
        )
        assert out == ["ok", "ok"]

    def test_pool_path_order(self):
        out = run_tasks(_square, list(range(6)), processes=2)
        assert out == [x * x for x in range(6)]
