"""Autograd engine tests: exact gradients vs central differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concat, numerical_gradient, stack, where


def _gradcheck(fn, x, atol=1e-5):
    """Compare analytic and numerical gradients of scalar fn(x)."""
    t = Tensor(x.copy(), requires_grad=True)
    fn(t).backward()
    numeric = numerical_gradient(lambda arr: fn(Tensor(arr)).item(), x.copy())
    assert t.grad is not None
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


RNG = np.random.default_rng(42)


class TestElementwise:
    def test_add_backward(self):
        _gradcheck(lambda t: (t + 3.0).sum(), RNG.normal(size=(3, 4)))

    def test_sub_backward(self):
        _gradcheck(lambda t: (5.0 - t).sum(), RNG.normal(size=(3, 4)))

    def test_mul_backward(self):
        _gradcheck(lambda t: (t * t).sum(), RNG.normal(size=(4,)))

    def test_div_backward(self):
        _gradcheck(lambda t: (1.0 / (t + 10.0)).sum(), RNG.uniform(1, 2, size=(3, 3)))

    def test_pow_backward(self):
        _gradcheck(lambda t: (t ** 3).sum(), RNG.uniform(0.5, 2, size=(5,)))

    def test_neg(self):
        _gradcheck(lambda t: (-t).sum(), RNG.normal(size=(2, 2)))

    def test_chain_of_ops(self):
        _gradcheck(
            lambda t: ((t * 2 + 1) * (t - 0.5)).mean(),
            RNG.normal(size=(3, 5)),
        )

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestBroadcasting:
    def test_broadcast_add_bias(self):
        bias = RNG.normal(size=(4,))
        x = RNG.normal(size=(3, 4))
        t = Tensor(x, requires_grad=True)
        b = Tensor(bias, requires_grad=True)
        (t + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))
        np.testing.assert_allclose(t.grad, np.ones((3, 4)))

    def test_broadcast_mul_column(self):
        col = Tensor(RNG.normal(size=(3, 1)), requires_grad=True)
        x = Tensor(RNG.normal(size=(3, 4)))
        (col * x).sum().backward()
        np.testing.assert_allclose(col.grad, x.data.sum(axis=1, keepdims=True))

    def test_scalar_broadcast(self):
        t = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        (t * 2.5).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 2.5))


class TestMatmul:
    def test_matmul_2d(self):
        w = RNG.normal(size=(4, 5))
        _gradcheck(lambda t: (t @ Tensor(w)).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_grad_wrt_weight(self):
        x = RNG.normal(size=(3, 4))
        w = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        (Tensor(x) @ w).sum().backward()
        expected = numerical_gradient(lambda arr: float((x @ arr).sum()), w.data.copy())
        np.testing.assert_allclose(w.grad, expected, atol=1e-5)

    def test_matmul_batched(self):
        w = RNG.normal(size=(4, 2))
        _gradcheck(lambda t: (t @ Tensor(w)).sum(), RNG.normal(size=(2, 3, 4)))

    def test_matvec(self):
        v = RNG.normal(size=(4,))
        _gradcheck(lambda t: (t @ Tensor(v)).sum(), RNG.normal(size=(3, 4)))


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["tanh", "sigmoid", "relu", "exp", "abs"])
    def test_unary_backward(self, op):
        x = RNG.normal(size=(3, 4)) + 0.1  # keep relu/abs off the kink
        _gradcheck(lambda t: getattr(t, op)().sum(), x)

    def test_log_backward(self):
        _gradcheck(lambda t: t.log().sum(), RNG.uniform(0.5, 3, size=(3, 3)))

    def test_sqrt_backward(self):
        _gradcheck(lambda t: t.sqrt().sum(), RNG.uniform(0.5, 3, size=(4,)))

    def test_sigmoid_saturates_safely(self):
        out = Tensor(np.array([1e4, -1e4])).sigmoid()
        assert np.all(np.isfinite(out.data))


class TestReductionsAndShapes:
    def test_sum_axis(self):
        _gradcheck(lambda t: t.sum(axis=0).sum(), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        _gradcheck(lambda t: (t * t.sum(axis=1, keepdims=True)).sum(), RNG.normal(size=(3, 4)))

    def test_mean(self):
        _gradcheck(lambda t: t.mean(), RNG.normal(size=(5, 2)))

    def test_mean_axis_tuple(self):
        _gradcheck(lambda t: t.mean(axis=(0, 1)).sum(), RNG.normal(size=(2, 3, 4)))

    def test_reshape(self):
        _gradcheck(lambda t: t.reshape(6).sum(), RNG.normal(size=(2, 3)))

    def test_transpose(self):
        _gradcheck(lambda t: (t.transpose() * 2).sum(), RNG.normal(size=(2, 3)))

    def test_getitem_slice(self):
        _gradcheck(lambda t: t[:, 1:3].sum(), RNG.normal(size=(3, 5)))

    def test_getitem_gradient_is_sparse(self):
        t = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        t[1, 1].sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestCombinators:
    def test_concat_backward(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_backward(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        (stack([a, b], axis=0) * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 2.0))

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t + t).sum().backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        (t.detach() * 2 + t).sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_backward_shape_mismatch_raises(self):
        t = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward(np.zeros(3))

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2).backward()
        t.zero_grad()
        assert t.grad is None

    def test_deep_graph_no_recursion_error(self):
        t = Tensor(np.array([0.001]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 0.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_gradcheck_random_composite(rows, cols, seed):
    """Property: analytic gradient matches numeric for random programs."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w = rng.normal(size=(cols, 3))

    def fn(t):
        return ((t @ Tensor(w)).tanh() * 0.5 + (t.sigmoid())[:, :1]).sum()

    _gradcheck(fn, x, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=1, max_size=20))
def test_sum_matches_numpy(values):
    arr = np.array(values)
    assert Tensor(arr).sum().item() == pytest.approx(arr.sum(), rel=1e-12, abs=1e-9)
