"""Exporters (Prometheus/JSONL), SLO budgets, and the obs CLI gates."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import (
    jsonl_lines,
    parse_prometheus_text,
    prometheus_text,
    sanitize_name,
    snapshots_equal,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO_SCHEMA,
    check_bench_file,
    check_bench_trend,
    evaluate_slo,
    load_slo,
)

CATALOG = Path(__file__).resolve().parents[1] / "src/repro/lintkit/obs_catalog.json"


@pytest.fixture(autouse=True)
def obs_off_after(monkeypatch):
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
    obs.configure(mode=obs.MODE_OFF)
    obs.reset()
    yield
    obs.configure(mode=obs.MODE_OFF)
    obs.reset()


def _catalog_names():
    catalog = json.loads(CATALOG.read_text(encoding="utf-8"))
    names = {}
    for section in ("harvested", "manual"):
        for name, entry in catalog.get(section, {}).items():
            names[name] = entry["kinds"]
    return names


def _registry_with_every_catalog_metric():
    """Populate a registry with one instance of every catalog metric."""
    reg = MetricsRegistry()
    for name, kinds in _catalog_names().items():
        for kind in kinds:
            if kind in ("counter", "warning"):
                reg.counter(name, 3.5)
            elif kind == "gauge":
                reg.gauge(name, 0.125)
            elif kind == "histogram":
                for v in (0.5, 7.0, 123.0):
                    reg.histogram(name, v)
            # spans have no snapshot representation
    return reg


# ---------------------------------------------------------------------------
# Prometheus exporter


class TestPrometheusRoundTrip:
    def test_every_catalog_metric_round_trips(self):
        # acceptance gate: parse(export(snap)) == snap for the full catalog
        snap = _registry_with_every_catalog_metric().snapshot()
        assert snap["counters"], "catalog produced no counters?"
        parsed = parse_prometheus_text(prometheus_text(snap))
        assert snapshots_equal(parsed, snap)

    def test_dotted_names_survive_via_help_lines(self):
        reg = MetricsRegistry()
        reg.counter("obs.merge.bucket_mismatch", 2)
        text = prometheus_text(reg.snapshot())
        assert "obs_merge_bucket_mismatch_total 2" in text
        assert "# HELP obs_merge_bucket_mismatch_total obs.merge.bucket_mismatch" in text
        parsed = parse_prometheus_text(text)
        assert parsed["counters"]["obs.merge.bucket_mismatch"] == 2.0

    def test_histogram_buckets_cumulative_then_decumulated(self):
        reg = MetricsRegistry()
        for v in (1.0, 1.0, 5.0, 50.0):
            reg.histogram("lat", v, buckets=(2.0, 10.0))
        snap = reg.snapshot()
        text = prometheus_text(snap)
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        parsed = parse_prometheus_text(text)
        hist = parsed["histograms"]["lat"]
        assert hist["counts"] == [2, 1, 1]
        assert hist["min"] == 1.0 and hist["max"] == 50.0
        assert snapshots_equal(parsed, snap)

    def test_sanitize_name(self):
        assert sanitize_name("obs.rss.peak_mb.pid42") == "obs_rss_peak_mb_pid42"
        assert sanitize_name("9lives") == "_9lives"


class TestJsonlExport:
    def test_one_self_describing_object_per_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits", 2)
        reg.gauge("loss", 0.5)
        reg.histogram("lat", 3.0, buckets=(10.0,))
        records = [json.loads(line) for line in jsonl_lines(reg.snapshot())]
        by_name = {r["name"]: r for r in records}
        assert by_name["hits"] == {"kind": "counter", "name": "hits", "value": 2.0}
        assert by_name["loss"]["kind"] == "gauge"
        assert by_name["lat"]["kind"] == "histogram"
        assert by_name["lat"]["count"] == 1


# ---------------------------------------------------------------------------
# SLO budgets


def _slo(budgets):
    return {"schema": SLO_SCHEMA, "budgets": budgets}


class TestEvaluateSlo:
    def test_stage_wall_bounds_longest_matching_span(self):
        spans = [
            {"name": "pipeline.train", "dur": 2.0},
            {"name": "pipeline.train", "dur": 9.0},
            {"name": "pipeline.evaluate", "dur": 1.0},
        ]
        violations = evaluate_slo(_slo({"stage_wall_s": {"pipeline.*": 5.0}}), spans=spans)
        assert [(v.budget, v.subject, v.actual) for v in violations] == [
            ("stage_wall_s", "pipeline.train", 9.0)
        ]

    def test_stage_wall_within_budget_passes(self):
        spans = [{"name": "pipeline.train", "dur": 2.0}]
        assert evaluate_slo(_slo({"stage_wall_s": {"pipeline.*": 5.0}}), spans=spans) == []

    def test_counter_max_glob(self):
        snap = {"counters": {"obs.sample.drops": 3.0, "cache.spill_error": 1.0}}
        violations = evaluate_slo(
            _slo({"counter_max": {"obs.sample.drops": 0, "*.spill_error": 0}}),
            snapshot=snap,
        )
        assert {v.subject for v in violations} == {"obs.sample.drops", "cache.spill_error"}

    def test_counter_min_missing_counter_is_a_violation(self):
        violations = evaluate_slo(_slo({"counter_min": {"obs.sample.ticks": 1}}), snapshot={})
        (v,) = violations
        assert v.budget == "counter_min" and v.actual == 0.0
        assert "below required" in v.message()

    def test_peak_rss_checks_gauges_workers_and_series(self):
        snap = {"gauges": {"obs.rss.peak_mb": 100.0, "obs.rss.peak_mb.pid7": 900.0}}
        series = [{"pid": 9, "peak_rss_mb": 950.0}, {"pid": 9, "peak_rss_mb": 700.0}]
        violations = evaluate_slo(
            _slo({"peak_rss_mb": 512}), snapshot=snap, series=series
        )
        assert {(v.subject, v.actual) for v in violations} == {
            ("obs.rss.peak_mb.pid7", 900.0),
            ("series.pid9", 950.0),
        }

    def test_load_slo_rejects_bad_files(self, tmp_path):
        bad_schema = tmp_path / "a.json"
        bad_schema.write_text(json.dumps({"schema": "nope", "budgets": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_slo(bad_schema)
        bad_key = tmp_path / "b.json"
        bad_key.write_text(json.dumps(_slo({"warp_speed": 9})))
        with pytest.raises(ValueError, match="unknown budget keys"):
            load_slo(bad_key)

    def test_load_slo_accepts_valid_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(_slo({"counter_max": {"x": 1}})))
        assert load_slo(path)["budgets"]["counter_max"] == {"x": 1}


class TestBenchTrend:
    def _bench(self, baseline, latest):
        return {
            "baseline": {"current_s": {"end_to_end": baseline}},
            "latest": {"current_s": {"end_to_end": latest}},
        }

    def test_regression_over_limit_fails(self):
        v = check_bench_trend(self._bench(10.0, 12.0), limit=1.15)
        assert v is not None and v.actual == 1.2

    def test_within_limit_passes(self):
        assert check_bench_trend(self._bench(10.0, 11.0), limit=1.15) is None

    def test_missing_sections_pass(self):
        assert check_bench_trend({}) is None
        assert check_bench_trend({"baseline": {"current_s": {"end_to_end": 1.0}}}) is None

    def test_missing_file_passes_bad_json_raises(self, tmp_path):
        assert check_bench_file(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            check_bench_file(bad)


# ---------------------------------------------------------------------------
# CLI gates


def _spill_run_telemetry(directory):
    """Produce a small but complete telemetry directory."""
    obs.configure(mode=obs.MODE_METRICS, directory=directory)
    obs.counter("obs.sample.ticks", 5)
    obs.counter("obs.sample.drops", 2)
    obs.gauge("obs.rss.peak_mb", 64.0)
    obs.histogram("step.ms", 12.0)
    obs.flush()
    (directory / "series-1.jsonl").write_text(
        json.dumps({"t": 0.0, "pid": 1, "window": "train", "peak_rss_mb": 64.0}) + "\n",
        encoding="utf-8",
    )


class TestObsCli:
    def test_check_slo_exits_nonzero_on_injected_violation(self, tmp_path, capsys):
        run_dir = tmp_path / "obs"
        _spill_run_telemetry(run_dir)
        budget = tmp_path / "slo.json"
        budget.write_text(json.dumps(_slo({"counter_max": {"obs.sample.drops": 0}})))
        code = main(["obs", "check-slo", "--budget", str(budget), "--dir", str(run_dir)])
        assert code == 1
        err = capsys.readouterr().err
        assert "obs.sample.drops" in err and "FAIL" in err

    def test_check_slo_passes_within_budget(self, tmp_path, capsys):
        run_dir = tmp_path / "obs"
        _spill_run_telemetry(run_dir)
        budget = tmp_path / "slo.json"
        budget.write_text(
            json.dumps(
                _slo(
                    {
                        "counter_min": {"obs.sample.ticks": 1},
                        "peak_rss_mb": 4096,
                        "end_to_end_regression": 1.15,
                    }
                )
            )
        )
        code = main(
            [
                "obs", "check-slo", "--budget", str(budget),
                "--dir", str(run_dir), "--bench", str(tmp_path / "absent.json"),
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_check_slo_bad_budget_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(["obs", "check-slo", "--budget", str(bad)]) == 2
        assert "expected an SLO file" in capsys.readouterr().err

    def test_export_prometheus_round_trips_via_cli(self, tmp_path, capsys):
        run_dir = tmp_path / "obs"
        _spill_run_telemetry(run_dir)
        code = main(["obs", "export", "--dir", str(run_dir), "--prometheus"])
        assert code == 0
        parsed = parse_prometheus_text(capsys.readouterr().out)
        assert parsed["counters"]["obs.sample.ticks"] == 5.0
        assert parsed["histograms"]["step.ms"]["count"] == 1

    def test_export_jsonl_to_file(self, tmp_path, capsys):
        run_dir = tmp_path / "obs"
        _spill_run_telemetry(run_dir)
        out = tmp_path / "metrics.jsonl"
        assert main(["obs", "export", "--dir", str(run_dir), "--out", str(out)]) == 0
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert {"counter", "gauge", "histogram"} <= kinds

    def test_top_shows_series_rows(self, tmp_path, capsys):
        run_dir = tmp_path / "obs"
        _spill_run_telemetry(run_dir)
        assert main(["obs", "top", "--dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "train" in out and "1 rows" in out

    def test_top_and_flame_exit_1_when_empty(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["obs", "top", "--dir", str(empty)]) == 1
        assert main(["obs", "flame", "--dir", str(empty)]) == 1

    def test_flame_writes_collapsed_stacks(self, tmp_path, capsys):
        run_dir = tmp_path / "obs"
        run_dir.mkdir()
        (run_dir / "flame-1.txt").write_text(
            "main;train;step 7\nmain;io 3\n", encoding="utf-8"
        )
        out = tmp_path / "flame.txt"
        assert main(["obs", "flame", "--dir", str(run_dir), "--out", str(out)]) == 0
        assert "main;train;step 7" in out.read_text()
        assert main(["obs", "flame", "--dir", str(run_dir)]) == 0
        assert "step" in capsys.readouterr().out
