"""Tree-based regressor tests (CART, RF, GBDT)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import DecisionTreeRegressor, GradientBoostingRegressor, RandomForestRegressor


def _step_data(n=200, seed=0):
    """Piecewise-constant target: trivially learnable by one split."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 3))
    y = np.where(x[:, 0] > 0.5, 5.0, -5.0)
    return x, y


def _smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 2))
    y = np.sin(x[:, 0]) + 0.5 * x[:, 1] + rng.normal(0, 0.05, n)
    return x, y


class TestDecisionTree:
    def test_learns_single_split(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 1e-6

    def test_depth_limit_respected(self):
        x, y = _smooth_data()
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self):
        x, y = _smooth_data(100)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=20).fit(x, y)

        def count_leaf_sizes(node, x_subset, y_subset, sizes):
            if node.is_leaf:
                sizes.append(len(y_subset))
                return
            mask = x_subset[:, node.feature] <= node.threshold
            count_leaf_sizes(node.left, x_subset[mask], y_subset[mask], sizes)
            count_leaf_sizes(node.right, x_subset[~mask], y_subset[~mask], sizes)

        sizes = []
        count_leaf_sizes(tree._root, x, y, sizes)
        assert min(sizes) >= 20

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(30, 2))
        tree = DecisionTreeRegressor().fit(x, np.full(30, 3.3))
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict(x), 3.3)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_wrong_feature_count_raises(self):
        x, y = _step_data(50)
        tree = DecisionTreeRegressor().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 5)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000))
    def test_predictions_within_target_range(self, seed):
        """Leaf values are means, so predictions stay in [min(y), max(y)]."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        pred = DecisionTreeRegressor(max_depth=5).fit(x, y).predict(x)
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12


class TestRandomForest:
    def test_beats_single_deep_tree_on_noise(self):
        x, y = _smooth_data(400, seed=1)
        x_test, y_test = _smooth_data(200, seed=2)
        forest = RandomForestRegressor(n_estimators=30, max_depth=8, seed=0).fit(x, y)
        forest_mse = np.mean((forest.predict(x_test) - y_test) ** 2)
        assert forest_mse < 0.1

    def test_deterministic_given_seed(self):
        x, y = _smooth_data(100)
        a = RandomForestRegressor(n_estimators=5, seed=7).fit(x, y).predict(x[:5])
        b = RandomForestRegressor(n_estimators=5, seed=7).fit(x, y).predict(x[:5])
        np.testing.assert_allclose(a, b)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_max_features_literal(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features="bogus").fit(*_step_data(20))


class TestGradientBoosting:
    def test_fits_smooth_function(self):
        x, y = _smooth_data(400, seed=1)
        model = GradientBoostingRegressor(n_estimators=80, max_depth=3, seed=0).fit(x, y)
        assert np.mean((model.predict(x) - y) ** 2) < 0.05

    def test_staged_predictions_improve(self):
        x, y = _smooth_data(300)
        model = GradientBoostingRegressor(n_estimators=40, seed=0).fit(x, y)
        stages = model.staged_predict(x)
        first_mse = np.mean((stages[0] - y) ** 2)
        last_mse = np.mean((stages[-1] - y) ** 2)
        assert last_mse < first_mse

    def test_early_stopping_truncates(self):
        x, y = _smooth_data(300, seed=3)
        model = GradientBoostingRegressor(n_estimators=200, seed=0)
        model.fit(x[:200], y[:200], x[200:], y[200:], early_stopping_rounds=5)
        assert len(model.trees_) < 200

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)

    def test_invalid_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))
