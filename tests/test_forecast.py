"""Statistical forecaster tests (Prophet substitute, harmonic mean)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forecast import (
    EWMAPredictor,
    HarmonicMeanPredictor,
    MovingAveragePredictor,
    PersistencePredictor,
    RollingProphet,
    StructuralProphet,
    harmonic_mean,
)


class TestStructuralProphet:
    def test_extrapolates_linear_trend(self):
        y = 2.0 * np.arange(50) + 5.0
        model = StructuralProphet(n_changepoints=0, alpha=1e-6).fit(y)
        pred = model.predict(5)
        np.testing.assert_allclose(pred, 2.0 * np.arange(50, 55) + 5.0, rtol=0.05)

    def test_captures_seasonality(self):
        t = np.arange(120)
        y = 10 + 3 * np.sin(2 * np.pi * t / 12)
        model = StructuralProphet(n_changepoints=0, season_period=12, fourier_order=2, alpha=1e-4)
        pred = model.fit(y).predict(12)
        expected = 10 + 3 * np.sin(2 * np.pi * np.arange(120, 132) / 12)
        assert np.abs(pred - expected).mean() < 0.5

    def test_changepoints_track_kinks(self):
        y = np.concatenate([np.full(40, 10.0), np.linspace(10, 40, 40)])
        model = StructuralProphet(n_changepoints=8, alpha=1e-4).fit(y)
        pred = model.predict(5)
        assert pred[0] > 30  # continues rising after the kink

    def test_too_short_history_raises(self):
        with pytest.raises(ValueError):
            StructuralProphet().fit(np.array([1.0, 2.0]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StructuralProphet().predict(3)

    def test_invalid_horizon(self):
        model = StructuralProphet().fit(np.arange(10.0))
        with pytest.raises(ValueError):
            model.predict(0)


class TestRollingProphet:
    def test_shapes(self):
        y = np.random.default_rng(0).uniform(100, 200, 50)
        forecasts = RollingProphet(horizon=4, window=20).predict_series(y)
        assert forecasts.shape == (50, 4)

    def test_persistence_fallback_for_short_history(self):
        y = np.array([5.0, 6.0, 7.0])
        forecasts = RollingProphet(horizon=2, min_history=10).predict_series(y)
        np.testing.assert_allclose(forecasts[0], 5.0)
        np.testing.assert_allclose(forecasts[2], 7.0)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean(np.array([1.0, 2.0, 4.0])) == pytest.approx(12 / 7)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            harmonic_mean(np.array([]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.1, 1e4), min_size=1, max_size=30))
    def test_harmonic_le_arithmetic(self, values):
        """AM-HM inequality: harmonic mean never exceeds arithmetic mean."""
        arr = np.array(values)
        assert harmonic_mean(arr) <= arr.mean() + 1e-9

    def test_dominated_by_small_values(self):
        """A single slow sample should drag the estimate down strongly."""
        fast = harmonic_mean(np.array([100.0] * 5))
        with_outlier = harmonic_mean(np.array([100.0] * 4 + [1.0]))
        assert with_outlier < 0.1 * fast + 10

    def test_predictor_horizon_constant(self):
        predictor = HarmonicMeanPredictor(window=3)
        out = predictor.predict(np.array([10.0, 20.0, 30.0]), horizon=4)
        assert out.shape == (4,)
        assert np.all(out == out[0])

    def test_predict_series_causal(self):
        """Forecast at step i must only depend on y[:i+1]."""
        predictor = HarmonicMeanPredictor(window=5)
        y = np.arange(1.0, 11.0)
        series = predictor.predict_series(y, horizon=1)
        prefix = predictor.predict_series(y[:5], horizon=1)
        np.testing.assert_allclose(series[:5], prefix)


class TestSimpleBaselines:
    def test_persistence(self):
        pred = PersistencePredictor().predict(np.array([1.0, 9.0]), horizon=3)
        np.testing.assert_allclose(pred, 9.0)

    def test_moving_average(self):
        pred = MovingAveragePredictor(window=2).predict(np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(pred, 3.0)

    def test_ewma_weights_recent(self):
        pred = EWMAPredictor(alpha=0.9).predict(np.array([0.0, 0.0, 10.0]))
        assert pred[0] > 8.0

    def test_empty_history_raises(self):
        for predictor in (PersistencePredictor(), MovingAveragePredictor(), EWMAPredictor()):
            with pytest.raises(ValueError):
                predictor.predict(np.array([]))
