"""Batched-vs-loop equivalence for the folded hot paths.

The perf work folds three Python loops into array computation, each
keeping its loop implementation as an oracle behind a toggle:

* CC folding in Prism5G (``batched_cc``) — forward values must be
  **bit-identical** to the per-carrier loop, including the row-chunked
  path used above ``_FOLD_CHUNK_ROWS``; gradients agree to a relative
  tolerance (weight-gradient matmuls reassociate the same sums).
* The fused decoder rollout (``fused_kernels``) — bit-identical to the
  op-by-op step loop, including the chunked head projection.
* The vectorized candidate-cell radio update (``vectorized_radio``) —
  per-field agreement with the scalar per-cell loop (numpy vs ``math``
  transcendentals differ at ulp level), discrete fields exact.
"""

import numpy as np
import pytest

from repro.core.prism5g import (
    _FOLD_CHUNK_ROWS,
    Prism5G,
    batched_cc,
    pack_inputs,
)
from repro.nn import Tensor
from repro.nn.modules import MLP, fused_kernels
from repro.nn.training import Trainer
from repro.ran.phy import (
    _cqi_from_sinr_scan,
    _mcs_from_cqi_scan,
    cqi_from_sinr,
    mcs_from_cqi,
)
from repro.ran.simulator import TraceSimulator, vectorized_radio

RNG = np.random.default_rng(1234)


def _packed_batch(n: int, t: int = 7, c: int = 4, f: int = 5) -> np.ndarray:
    x = RNG.normal(size=(n, t, c, f))
    mask = (RNG.random(size=(n, t, c)) > 0.3).astype(np.float64)
    mask[:, :, 0] = 1.0  # keep at least one carrier active
    y_hist = RNG.normal(size=(n, t))
    return pack_inputs(x, mask, y_hist)


def _rel_err(a: np.ndarray, b: np.ndarray, floor: float = 1e-9) -> float:
    # absolute floor: some gradients are analytically zero (e.g. the
    # attention key bias under softmax shift-invariance)
    return float(np.max(np.abs(a - b) / np.maximum(np.abs(b), floor)))


class TestCCFolding:
    @pytest.mark.parametrize("rnn", ["lstm", "gru"])
    @pytest.mark.parametrize("head", ["decoder", "mlp"])
    def test_forward_bit_identical(self, rnn, head):
        model = Prism5G(n_ccs=4, n_features=5, horizon=6, hidden=12, rnn=rnn, head=head)
        packed = _packed_batch(10)
        with batched_cc(True):
            folded = model(Tensor(packed)).numpy()
        with batched_cc(False):
            loop = model(Tensor(packed)).numpy()
        assert np.array_equal(folded, loop)

    def test_forward_matches_op_by_op_oracle(self):
        """Folded + fused vs the fully unfused per-CC loop."""
        model = Prism5G(n_ccs=4, n_features=5, horizon=6, hidden=12)
        packed = _packed_batch(9)
        with batched_cc(True), fused_kernels(True):
            folded = model(Tensor(packed)).numpy()
        with batched_cc(False), fused_kernels(False):
            oracle = model(Tensor(packed)).numpy()
        assert np.array_equal(folded, oracle)

    def test_chunked_rows_bit_identical(self):
        """Row counts above _FOLD_CHUNK_ROWS take the L2-blocked path."""
        c = 4
        n = _FOLD_CHUNK_ROWS // c + 9  # c*n > _FOLD_CHUNK_ROWS
        model = Prism5G(n_ccs=c, n_features=5, horizon=4, hidden=10)
        packed = _packed_batch(n, c=c)
        assert c * n > _FOLD_CHUNK_ROWS
        with batched_cc(True):
            folded = model(Tensor(packed)).numpy()
        with batched_cc(False):
            loop = model(Tensor(packed)).numpy()
        assert np.array_equal(folded, loop)

    def test_transformer_variant_bit_identical(self):
        model = Prism5G(n_ccs=3, n_features=4, horizon=4, hidden=8, rnn="transformer")
        packed = _packed_batch(8, c=3, f=4)
        with batched_cc(True):
            folded = model(Tensor(packed)).numpy()
        with batched_cc(False):
            loop = model(Tensor(packed)).numpy()
        assert np.array_equal(folded, loop)

    @pytest.mark.parametrize("rnn", ["lstm", "transformer"])
    def test_gradients_match_loop(self, rnn):
        packed = _packed_batch(8)

        def grads(folded: bool):
            model = Prism5G(n_ccs=4, n_features=5, horizon=5, hidden=10, rnn=rnn)
            with batched_cc(folded):
                loss = (model(Tensor(packed)) ** 2).mean()
                model.zero_grad()
                loss.backward()
            return {name: p.grad for name, p in model.named_parameters()}

        ga, gb = grads(True), grads(False)
        assert set(ga) == set(gb)
        for name in gb:
            assert ga[name] is not None, name
            assert _rel_err(ga[name], gb[name]) <= 1e-6, name

    def test_predict_all_single_pass_consistent(self):
        model = Prism5G(n_ccs=4, n_features=5, horizon=6, hidden=12)
        packed = _packed_batch(6)
        agg, per_cc = model.predict_all(packed)
        assert agg.shape == (6, 6)
        assert per_cc.shape == (6, 4, 6)
        assert np.array_equal(model.aggregate_prediction(packed), agg)
        assert np.array_equal(model.predict_per_cc(packed), per_cc)
        # the aggregate head is the sum of the per-CC heads
        np.testing.assert_allclose(agg, per_cc.sum(axis=1), rtol=1e-12, atol=1e-12)


class TestFusedDecoder:
    def test_rollout_bit_identical(self):
        model = Prism5G(n_ccs=4, n_features=5, horizon=8, hidden=12)
        h0 = Tensor(RNG.normal(size=(12, 12)))
        with fused_kernels(True):
            fused = model._decode(h0).numpy()
        fused_loop = model._decode_loop(h0).numpy()
        assert np.array_equal(fused, fused_loop)

    def test_chunked_head_projection_bit_identical(self):
        """out_chunks splits the narrow head GEMV to match per-CC rounding."""
        model = Prism5G(n_ccs=4, n_features=5, horizon=6, hidden=10)
        per_cc = RNG.normal(size=(4, 16, 10))
        folded = np.concatenate(list(per_cc), axis=0)  # carrier-major fold
        with fused_kernels(True):
            whole = model._decode(Tensor(folded), chunks=4).numpy()
            parts = np.concatenate(
                [model._decode(Tensor(h)).numpy() for h in per_cc], axis=0
            )
        assert np.array_equal(whole, parts)

    def test_rollout_gradients_match_loop(self):
        h0_data = RNG.normal(size=(10, 12))

        def grads(use_fused: bool):
            model = Prism5G(n_ccs=4, n_features=5, horizon=8, hidden=12)
            h0 = Tensor(h0_data, requires_grad=True)
            with fused_kernels(use_fused):
                preds = model._decode(h0) if use_fused else model._decode_loop(h0)
                loss = (preds ** 2).mean()
                model.zero_grad()
                loss.backward()
            named = {
                name: p.grad
                for name, p in model.named_parameters()
                if name.startswith("decoder") and p.grad is not None
            }
            named["h0"] = h0.grad
            return named

        ga, gb = grads(True), grads(False)
        assert set(ga) == set(gb) and len(ga) > 1
        for name in gb:
            assert _rel_err(ga[name], gb[name]) <= 1e-6, name


class TestVectorizedRadio:
    @pytest.fixture(scope="class")
    def trace_pair(self):
        def run(vec: bool):
            with vectorized_radio(vec):
                sim = TraceSimulator(
                    "OpX", scenario="urban", mobility="walking", dt_s=0.1, seed=7
                )
                return sim.run(20.0)

        return run(True), run(False)

    def test_analog_fields_match_per_cell(self, trace_pair):
        vec, loop = trace_pair
        assert len(vec.records) == len(loop.records)
        for rec_v, rec_l in zip(vec.records, loop.records):
            for cc_v, cc_l in zip(rec_v.ccs, rec_l.ccs):
                for field in ("rsrp_dbm", "sinr_db", "bler", "n_rb", "tput_mbps"):
                    np.testing.assert_allclose(
                        getattr(cc_v, field),
                        getattr(cc_l, field),
                        rtol=1e-9,
                        atol=1e-12,
                        err_msg=field,
                    )

    def test_discrete_fields_exact(self, trace_pair):
        vec, loop = trace_pair
        for rec_v, rec_l in zip(vec.records, loop.records):
            assert rec_v.n_active_ccs == rec_l.n_active_ccs
            for cc_v, cc_l in zip(rec_v.ccs, rec_l.ccs):
                assert cc_v.active == cc_l.active
                assert cc_v.cqi == cc_l.cqi
                assert cc_v.mcs == cc_l.mcs

    def test_aggregate_throughput_matches(self, trace_pair):
        vec, loop = trace_pair
        np.testing.assert_allclose(
            vec.throughput_series(), loop.throughput_series(), rtol=1e-9, atol=1e-12
        )


class TestPhyLookupOracles:
    def test_cqi_searchsorted_matches_scan(self):
        for sinr in np.arange(-30.0, 40.0, 0.01):
            assert cqi_from_sinr(sinr) == _cqi_from_sinr_scan(sinr), sinr

    def test_mcs_searchsorted_matches_scan(self):
        for cqi in range(16):
            assert mcs_from_cqi(cqi) == _mcs_from_cqi_scan(cqi), cqi


class TestTrainerCheckpoint:
    def test_fit_restores_best_epoch_parameters(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(64, 6))
        y = x @ rng.normal(size=(6, 2)) + 0.5 * rng.normal(size=(64, 2))
        x_val = rng.normal(size=(24, 6))
        y_val = x_val @ rng.normal(size=(6, 2))  # different target: val fluctuates

        def fit(max_epochs: int):
            model = MLP(6, [8], 2, rng=np.random.default_rng(0))
            trainer = Trainer(model, lr=0.05, batch_size=16, max_epochs=max_epochs,
                              patience=max_epochs, seed=5)
            history = trainer.fit(x, y, x_val, y_val)
            return model, history

        model, history = fit(10)
        assert 0 <= history.best_epoch < 10
        # rerunning with max_epochs = best_epoch + 1 replays the identical
        # (seeded) trajectory up to the best epoch; the restored best
        # checkpoint must equal that run's final parameters bit-for-bit
        model_ref, history_ref = fit(history.best_epoch + 1)
        assert history_ref.best_epoch == history.best_epoch
        ref = dict(model_ref.named_parameters())
        for name, p in model.named_parameters():
            assert np.array_equal(p.data, ref[name].data), name
