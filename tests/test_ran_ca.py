"""CA manager tests: PCell selection, SCell add/release, caps, events."""

import numpy as np
import pytest

from repro.ran import CAManager, ChannelPlan, build_deployment, get_ue


def _deployment():
    plans = [ChannelPlan("n71", 20), ChannelPlan("n25", 20), ChannelPlan("n41", 100), ChannelPlan("n41", 40)]
    return build_deployment(plans, scenario="urban", area_m=400.0, seed=0)


def _site_cells(deployment):
    """Cells of the first site, keyed by band/bandwidth for addressing."""
    station = deployment.stations[0]
    return {cell.cell_id: cell for cell in station.cells}


def _manager(deployment, **kwargs):
    defaults = dict(rat="5G", max_ccs_policy=4, time_to_trigger_s=0.0)
    defaults.update(kwargs)
    return CAManager(deployment, get_ue("X70"), **defaults)


class TestPCellSelection:
    def test_strongest_mid_band_wins(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -85.0 for cid in cells}
        manager = _manager(deployment)
        state = manager.step(1.0, rsrp, cells)
        assert state.pcell_id is not None
        pcell = cells[state.pcell_id]
        assert pcell.band.band_class == "mid"
        assert pcell.bandwidth_mhz == 100  # widest mid-band preferred

    def test_low_band_fallback_when_mid_weak(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {}
        for cid, cell in cells.items():
            rsrp[cid] = -90.0 if cell.band.band_class == "low" else -112.0
        manager = _manager(deployment)
        state = manager.step(1.0, rsrp, cells)
        assert cells[state.pcell_id].band.band_class == "low"

    def test_no_servable_cell_gives_no_pcell(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -130.0 for cid in cells}
        state = _manager(deployment).step(1.0, rsrp, cells)
        assert state.pcell_id is None
        assert state.n_ccs == 0

    def test_hysteresis_prevents_ping_pong(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        mid_ids = [cid for cid, c in cells.items() if c.bandwidth_mhz == 100]
        other_mid = [cid for cid, c in cells.items() if c.bandwidth_mhz == 40]
        manager = _manager(deployment, ca_enabled=False, l3_filter_alpha=1.0)
        rsrp = {mid_ids[0]: -80.0, other_mid[0]: -85.0}
        state = manager.step(1.0, rsrp, cells)
        first = state.pcell_id
        # small fluctuation should not flip the PCell
        rsrp = {mid_ids[0]: -84.0, other_mid[0]: -83.0}
        state = manager.step(1.0, rsrp, cells)
        assert state.pcell_id == first


class TestSCellManagement:
    def test_scells_added_up_to_cap(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -80.0 for cid in cells}
        manager = _manager(deployment)
        state = manager.step(1.0, rsrp, cells)
        assert state.n_ccs == min(4, len(cells))
        assert any(e.startswith("scell_add") for e in state.events)

    def test_ue_capability_caps_ccs(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -80.0 for cid in cells}
        manager = CAManager(deployment, get_ue("X60"), rat="5G", max_ccs_policy=4, time_to_trigger_s=0.0)
        state = manager.step(1.0, rsrp, cells)
        assert state.n_ccs <= 2  # X60 supports 2CC FR1

    def test_x50_gets_no_sa_ca(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -75.0 for cid in cells}
        manager = CAManager(deployment, get_ue("X50"), rat="5G", max_ccs_policy=4, time_to_trigger_s=0.0)
        state = manager.step(1.0, rsrp, cells)
        assert state.n_ccs == 1

    def test_weak_scell_released_with_event(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -80.0 for cid in cells}
        manager = _manager(deployment)
        state = manager.step(1.0, rsrp, cells)
        scell = state.scell_ids[0]
        rsrp = dict(rsrp)
        rsrp[scell] = -130.0
        released_events = []
        for _ in range(4):  # L3 filtering takes a few steps to converge
            state = manager.step(1.0, rsrp, cells)
            released_events += state.events
        assert scell not in state.scell_ids
        assert any(e.startswith("scell_release") for e in released_events)

    def test_time_to_trigger_delays_addition(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        manager = _manager(deployment, time_to_trigger_s=0.64)
        rsrp = {cid: -80.0 for cid in cells}
        state = manager.step(0.1, rsrp, cells)
        assert state.n_ccs == 1  # PCell connects immediately, SCells wait TTT
        for _ in range(8):
            state = manager.step(0.1, rsrp, cells)
        assert state.n_ccs > 1

    def test_ca_disabled_never_aggregates(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -75.0 for cid in cells}
        manager = _manager(deployment, ca_enabled=False)
        for _ in range(5):
            state = manager.step(1.0, rsrp, cells)
        assert state.n_ccs == 1

    def test_pcell_change_releases_scells(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -80.0 for cid in cells}
        manager = _manager(deployment, l3_filter_alpha=1.0)
        state = manager.step(1.0, rsrp, cells)
        old_pcell = state.pcell_id
        assert state.scell_ids
        # crush the PCell so another band takes over
        rsrp = dict(rsrp)
        rsrp[old_pcell] = -130.0
        state = manager.step(1.0, rsrp, cells)
        assert state.pcell_id != old_pcell


class TestCAPerformanceCoupling:
    def _aggregated_manager(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        rsrp = {cid: -80.0 for cid in cells}
        manager = _manager(deployment)
        state = manager.step(1.0, rsrp, cells)
        return manager, cells, state

    def test_no_penalty_without_ca(self):
        deployment = _deployment()
        cells = _site_cells(deployment)
        manager = _manager(deployment, ca_enabled=False)
        state = manager.step(1.0, {cid: -80.0 for cid in cells}, cells)
        assert manager.sinr_penalty_db(state.pcell_id) == 0.0

    def test_scell_penalty_exceeds_pcell_penalty(self):
        manager, cells, state = self._aggregated_manager()
        assert state.scell_ids
        assert manager.sinr_penalty_db(state.scell_ids[0]) > manager.sinr_penalty_db(state.pcell_id)

    def test_penalty_capped(self):
        manager, cells, state = self._aggregated_manager()
        assert manager.sinr_penalty_db(state.scell_ids[0]) <= manager.max_power_split_db

    def test_fdd_scell_loses_layers_at_3cc(self):
        """The Fig 14 mechanism: FDD SCell drops to 1 layer in >=3CC CA."""
        manager, cells, state = self._aggregated_manager()
        assert state.n_ccs >= 3
        fdd_scells = [cid for cid in state.scell_ids if cells[cid].band.duplex == "FDD"]
        assert fdd_scells, "expected an FDD SCell in the combo"
        assert manager.layer_cap(cells[fdd_scells[0]], default_cap=4) == 1

    def test_pcell_keeps_full_rank(self):
        manager, cells, state = self._aggregated_manager()
        assert manager.layer_cap(cells[state.pcell_id], default_cap=4) == 4
