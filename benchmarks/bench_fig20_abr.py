"""F20 — paper Figs 20-21: MPC video streaming with different forecasters.

Streams the 16K ladder over 5G CA traces with MPC driven by the stock
harmonic-mean forecaster, Prophet, Prism5G and a clairvoyant oracle.
Paper: MPC+Prism5G keeps the average bitrate while cutting stall time
~19% and improving the 99/95/90th-percentile stall tails by 50.8/33.0/
16.0 s.
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import (
    ABRConfig,
    MPCPlayer,
    harmonic_forecaster,
    oracle_forecaster_factory,
    predictor_forecaster,
    stall_tail_improvements,
)
from repro.core import DeepConfig, Prism5GPredictor, ProphetPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.ran import TraceSimulator

from conftest import run_once


def test_fig20_abr_with_predictors(benchmark, scale, report):
    def experiment():
        spec = SubDatasetSpec("OpZ", "driving", "long")
        dataset = build_subdataset(
            spec, n_traces=scale.n_traces, samples_per_trace=scale.samples_per_trace, seed=14
        )
        train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
        config = DeepConfig(hidden=scale.hidden, max_epochs=max(20, scale.epochs // 2), patience=10)
        prism = Prism5GPredictor(config)
        prism.fit(train, val)
        prophet = ProphetPredictor().fit(train)

        abr = ABRConfig(lookahead=3, chunk_s=2.0)
        player = MPCPlayer(abr)
        sessions = {"harmonic": [], "Prophet": [], "Prism5G": [], "oracle": []}
        for seed in range(scale.seeds * 2):
            trace = TraceSimulator(
                "OpZ", scenario="urban", mobility="driving", dt_s=1.0, seed=1300 + seed
            ).run(max(200.0, scale.duration_s * 2))
            tput = trace.throughput_series()
            forecasters = {
                "harmonic": harmonic_forecaster,
                "Prophet": predictor_forecaster(prophet, trace, dataset, abr.chunk_s),
                "Prism5G": predictor_forecaster(prism, trace, dataset, abr.chunk_s),
                "oracle": oracle_forecaster_factory(tput, trace.dt_s, abr.chunk_s),
            }
            for name, forecaster in forecasters.items():
                sessions[name].append(player.run(tput, trace.dt_s, forecaster))
        return sessions

    sessions = run_once(benchmark, experiment)

    report.emit("=== Fig 20: MPC streaming QoE by forecaster ===")
    rows = []
    stats = {}
    for name, runs in sessions.items():
        bitrate = float(np.mean([s.avg_quality for s in runs]))
        stall = float(np.mean([s.stall_time_s for s in runs]))
        stats[name] = (bitrate, stall)
        rows.append([f"MPC+{name}", bitrate, stall, float(np.mean([s.quality_switches for s in runs]))])
    report.emit(
        format_table(["Policy", "Avg bitrate Mbps", "Avg stall s", "Switches"], rows, float_fmt="{:.1f}")
    )

    gains = stall_tail_improvements(
        [s.stall_time_s for s in sessions["harmonic"]],
        [s.stall_time_s for s in sessions["Prism5G"]],
        percentiles=(99.0, 95.0, 90.0),
    )
    report.emit("")
    report.emit("=== Fig 21: stall tail reduction, Prism5G vs harmonic ===")
    for pct, gain in gains.items():
        report.emit(f"  p{pct:.0f}: {gain:+.1f} s (paper: +50.8 / +33.0 / +16.0 s)")

    report.emit("")
    report.emit(
        "Shape check (paper Figs 20-21): Prism5G cuts stalls vs harmonic"
        " while holding bitrate; the oracle bounds everyone."
    )
    assert stats["Prism5G"][1] <= stats["harmonic"][1] + 1.0, "Prism5G should not stall more"
    assert stats["Prism5G"][0] >= 0.8 * stats["harmonic"][0], "bitrate must be held"
