"""Extension bench — NSA dual connectivity (paper §2.1's "PDCP-layer CA").

Not a numbered paper figure, but a direct consequence of §2.1 and the
Fig 27 fallback discussion: EN-DC merges a 4G CA anchor (up to 5 CCs)
with a 5G NR leg, and loses the NR leg where mid-band coverage thins
(indoors), falling back to LTE.
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import DualConnectivitySimulator, TraceSimulator

from conftest import run_once


def test_nsa_dual_connectivity(benchmark, scale, report):
    def experiment():
        out = {}
        for label, scenario, mobility in (
            ("urban drive", "urban", "driving"),
            ("indoor walk", "indoor", "indoor"),
        ):
            nsa_means, nr_ratios, lte_means = [], [], []
            for seed in range(scale.seeds):
                sim = DualConnectivitySimulator(
                    "OpX", scenario=scenario, mobility=mobility, dt_s=1.0, seed=2100 + seed
                )
                trace = sim.run(scale.duration_s)
                nsa_means.append(trace.throughput_series().mean())
                nr_ratios.append(sim.nr_attachment_ratio(trace))
                lte = TraceSimulator(
                    "OpX", scenario=scenario, mobility=mobility, rat="4G", dt_s=1.0,
                    seed=2100 + seed,
                ).run(scale.duration_s)
                lte_means.append(lte.throughput_series().mean())
            out[label] = (
                float(np.mean(nsa_means)),
                float(np.mean(lte_means)),
                float(np.mean(nr_ratios)),
            )
        return out

    results = run_once(benchmark, experiment)

    report.emit("=== NSA EN-DC: LTE anchor + NR leg (OpX) ===")
    rows = [
        [label, nsa, lte, f"{ratio * 100:.0f}%"]
        for label, (nsa, lte, ratio) in results.items()
    ]
    report.emit(format_table(["Scenario", "NSA Mbps", "LTE-only Mbps", "NR-leg time"], rows, float_fmt="{:.0f}"))

    report.emit("")
    report.emit(
        "Shape check: the NR leg boosts NSA over LTE-only outdoors, and"
        " detaches more often indoors (paper Fig 27 fallback)."
    )
    urban = results["urban drive"]
    indoor = results["indoor walk"]
    assert urban[0] > urban[1], "NSA must beat LTE-only on an urban drive"
    assert indoor[2] <= urban[2] + 0.05, "indoor NR attachment should not exceed outdoor"
