"""T8 — paper Tables 8-10, Figs 31-32: time-of-day (load) dynamics.

At a good-coverage and a bad-coverage location, compares rush hour (T1)
vs non-rush hours (T2/T3): per-CC signal strength stays stable across
times of day (Table 8) and so do CQI/MCS, while the allocated #RB — and
hence throughput — drops at rush hour (Tables 9-10).
"""

import math

import numpy as np

from repro.analysis import format_table
from repro.ran import TraceSimulator, Stationary

from conftest import run_once

HOURS = {"T1 (rush)": 12.5, "T2": 20.5, "T3": 3.0}


def _stationary_run(hour, distance_m, seed, duration_s):
    sim = TraceSimulator(
        "OpZ",
        scenario="urban",
        mobility=Stationary(position=(0.0, 0.0)),
        dt_s=1.0,
        hour=hour,
        seed=seed,
        band_lock=["n41@2500"],
        ca_enabled=False,
    )
    site = min(sim.deployment.stations, key=lambda bs: math.dist(bs.position, (0.0, 0.0)))
    sim.mobility = Stationary(position=(site.position[0] + distance_m, site.position[1]))
    return sim.run(duration_s)


def _cc_metrics(trace):
    rsrp, cqi, mcs, rb, tput = [], [], [], [], []
    for rec in trace.records:
        for cc in rec.ccs:
            if cc.active:
                rsrp.append(cc.rsrp_dbm)
                cqi.append(cc.cqi)
                mcs.append(cc.mcs)
                rb.append(cc.n_rb)
                tput.append(cc.tput_mbps)
    return {k: float(np.mean(v)) for k, v in
            {"rsrp": rsrp, "cqi": cqi, "mcs": mcs, "rb": rb, "tput": tput}.items()}


def test_table8_temporal_dynamics(benchmark, scale, report):
    def experiment():
        out = {}
        for coverage, distance in (("good", 80.0), ("bad", 600.0)):
            for label, hour in HOURS.items():
                metrics = [
                    _cc_metrics(_stationary_run(hour, distance, 1500 + s, scale.duration_s))
                    for s in range(scale.seeds)
                ]
                out[(coverage, label)] = {
                    k: float(np.mean([m[k] for m in metrics])) for k in metrics[0]
                }
        return out

    results = run_once(benchmark, experiment)

    report.emit("=== Tables 8-10: rush hour vs non-rush, per-CC metrics ===")
    rows = []
    for (coverage, label), metrics in sorted(results.items()):
        rows.append([coverage, label, metrics["rsrp"], metrics["cqi"], metrics["mcs"], metrics["rb"], metrics["tput"]])
    report.emit(
        format_table(
            ["Coverage", "Time", "RSRP dBm", "CQI", "MCS", "#RB", "Tput Mbps"],
            rows,
            float_fmt="{:.1f}",
        )
    )

    report.emit("")
    report.emit(
        "Shape check (paper): RSRP/CQI/MCS are stable across times of day;"
        " #RB (and throughput) drop at rush hour, especially at the"
        " bad-coverage spot."
    )
    for coverage in ("good", "bad"):
        rush = results[(coverage, "T1 (rush)")]
        off = results[(coverage, "T3")]
        assert rush["rb"] < off["rb"], f"rush hour must cut #RB ({coverage})"
        assert abs(rush["rsrp"] - off["rsrp"]) < 6.0, "signal strength is time-stable"
        assert abs(rush["cqi"] - off["cqi"]) < 2.0, "CQI is time-stable"
