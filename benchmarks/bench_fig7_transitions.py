"""F7 — paper Fig 7 + Appendix A.2: CC changes cause abrupt throughput swings.

Drives through urban/suburban/highway scenarios, locates SCell
add/release events, and reports the event frequency and the throughput
disruption around events vs stable periods (the paper: changes every
16-34 s, 176-1016% swings, higher std around events).
"""

import numpy as np

from repro.analysis import format_table, transition_statistics
from repro.ran import TraceSimulator

from conftest import run_once


def test_fig7_cc_transition_dynamics(benchmark, scale, report):
    def experiment():
        stats = {}
        for scenario in ("urban", "suburban", "highway"):
            per_scenario = []
            for seed in range(scale.seeds):
                sim = TraceSimulator(
                    "OpZ", scenario=scenario, mobility="driving", dt_s=1.0, seed=500 + seed
                )
                trace = sim.run(scale.duration_s * 2)
                per_scenario.append(transition_statistics(trace))
            stats[scenario] = per_scenario
        return stats

    stats = run_once(benchmark, experiment)

    report.emit("=== Fig 7 / App A.2: CC add/remove dynamics while driving ===")
    rows = []
    for scenario, per_scenario in stats.items():
        events = float(np.mean([s.n_events for s in per_scenario]))
        intervals = [s.mean_interval_s for s in per_scenario if np.isfinite(s.mean_interval_s)]
        interval = float(np.mean(intervals)) if intervals else float("inf")
        change = float(np.mean([s.mean_change_pct for s in per_scenario]))
        std_event = float(np.mean([s.std_with_events_mbps for s in per_scenario]))
        std_stable = float(np.mean([s.std_stable_mbps for s in per_scenario]))
        rows.append([scenario, events, interval, change, std_event, std_stable])
    report.emit(
        format_table(
            ["Scenario", "#Events", "Interval (s)", "|dTput| %", "Std@events", "Std stable"],
            rows,
            float_fmt="{:.1f}",
        )
    )
    report.emit("")
    report.emit(
        "Shape check (paper): events minutes apart; throughput std around"
        " events exceeds the stable-period std."
    )
    pooled_event_std = np.mean([s.std_with_events_mbps for ss in stats.values() for s in ss if s.n_events])
    pooled_stable_std = np.mean([s.std_stable_mbps for ss in stats.values() for s in ss if s.n_events])
    assert pooled_event_std > pooled_stable_std
