"""F29 — paper Fig 29: UE (modem) capability gates CA.

The S10 (X50 modem) gets no SA 5G CA; the S21 (X60) aggregates 2 CCs;
the S22 (X65) 3 CCs; the S23 (X70) 4 CCs — with throughput scaling
accordingly on the same network.
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import TraceSimulator, UE_REGISTRY, simulate_stationary_ideal

from conftest import run_once

MODEMS = ("X50", "X60", "X65", "X70")


def test_fig29_ue_capability(benchmark, scale, report):
    def experiment():
        out = {}
        for modem in MODEMS:
            cc_counts, tputs = [], []
            for seed in range(scale.seeds):
                trace = simulate_stationary_ideal(
                    "OpZ", duration_s=min(scale.duration_s / 2, 30.0), seed=1900 + seed, modem=modem
                )
                cc_counts.append(trace.cc_count_series().max())
                tputs.append(trace.throughput_series().mean())
            out[modem] = (int(np.max(cc_counts)), float(np.mean(tputs)))
        return out

    results = run_once(benchmark, experiment)

    report.emit("=== Fig 29: CA and throughput by UE modem (same network) ===")
    rows = []
    for modem in MODEMS:
        phone = UE_REGISTRY[modem].phone_model
        max_cc, tput = results[modem]
        rows.append([phone, modem, max_cc, tput])
    report.emit(format_table(["Phone", "Modem", "Max CCs", "Mean Mbps"], rows, float_fmt="{:.0f}"))

    report.emit("")
    report.emit(
        "Shape check (paper Fig 29): X50 gets no SA CA (1 CC); newer"
        " modems unlock 2/3/4 CCs with growing throughput."
    )
    assert results["X50"][0] == 1
    assert results["X60"][0] == 2
    assert results["X65"][0] == 3
    assert results["X70"][0] == 4
    assert results["X70"][1] > results["X50"][1]
