"""T4 — paper Table 4: RMSE of all predictors across the sub-datasets.

The paper's headline evaluation: Prophet / LSTM / TCN / Lumos5G vs
Prism5G on {OpX, OpY, OpZ} x {walking, driving} at the 10 ms (short)
and 1 s (long) scales, reporting normalized RMSE and the improvement
over the best baseline.

At default scale this runs a representative subset (OpZ + OpX, both
scales, Prophet/LSTM/Prism5G); ``REPRO_SCALE=full`` runs all six
sub-datasets with the full line-up.
"""

import numpy as np

from repro.analysis import format_rmse_table
from repro.core import DeepConfig, evaluate_predictors, make_default_predictors
from repro.data import SubDatasetSpec, build_subdataset

from conftest import run_once

#: paper Table 4 values for the corresponding cells (long scale).
PAPER_LONG = {
    "OpZ (Driving)": {"Prophet": 0.451, "LSTM": 0.342, "Prism5G": 0.277},
    "OpZ (Walking)": {"Prophet": 0.376, "LSTM": 0.276, "Prism5G": 0.228},
}


def test_table4_main_comparison(benchmark, scale, report):
    if scale.full:
        specs = [
            SubDatasetSpec(op, mob, ts)
            for ts in ("short", "long")
            for op in ("OpX", "OpY", "OpZ")
            for mob in ("walking", "driving")
        ]
        include = ["Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"]
    else:
        specs = [
            SubDatasetSpec("OpZ", "driving", "long"),
            SubDatasetSpec("OpZ", "walking", "short"),
            SubDatasetSpec("OpX", "driving", "long"),
        ]
        include = ["Prophet", "LSTM", "Prism5G"]

    def experiment():
        results = {}
        for spec in specs:
            dataset = build_subdataset(
                spec, n_traces=scale.n_traces, samples_per_trace=scale.samples_per_trace, seed=1
            )
            config = DeepConfig(hidden=scale.hidden, max_epochs=scale.epochs, patience=max(10, scale.epochs // 6))
            predictors = make_default_predictors(config, include=include)
            results[spec.name] = evaluate_predictors(dataset, predictors, dataset_name=spec.name)
        return results

    results = run_once(benchmark, experiment)

    table = {name: result.rmse for name, result in results.items()}
    report.emit(format_rmse_table(table, methods=include, title="=== Table 4: RMSE (normalized), lower is better ==="))

    improvements = []
    for name, result in results.items():
        improvement = result.improvement_over_best_baseline()
        improvements.append(improvement)
        report.emit(f"{name}: Prism5G improvement over best baseline: {improvement:+.1f}%")
    report.emit("")
    report.emit(
        "Shape check (paper): Prophet is the weakest everywhere; Prism5G"
        " improves on the best baseline (paper: 14% average, up to 22%)."
    )
    for name, result in results.items():
        assert result.rmse["Prophet"] == max(result.rmse.values()), f"Prophet should be worst on {name}"
    assert np.mean(improvements) > 0.0, "Prism5G should beat the baselines on average"
