"""T13 — paper Table 13: ablation of Prism5G's two key mechanisms.

Removes (1) the state-trigger mask and (2) the fusion module, and — as
a design-space extension beyond the paper — swaps the RNN block from
LSTM to GRU (the paper notes the block is swappable).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import DeepConfig, Prism5GPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split

from conftest import run_once


def test_table13_ablation(benchmark, scale, report):
    def experiment():
        spec = SubDatasetSpec("OpZ", "driving", "long")
        dataset = build_subdataset(
            spec, n_traces=scale.n_traces, samples_per_trace=scale.samples_per_trace, seed=6
        )
        train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
        config = DeepConfig(hidden=scale.hidden, max_epochs=scale.epochs, patience=max(10, scale.epochs // 6))
        variants = {
            "Prism5G (full)": Prism5GPredictor(config),
            "No State": Prism5GPredictor(config, use_state_trigger=False),
            "No Fusion": Prism5GPredictor(config, use_fusion=False),
            "GRU block": Prism5GPredictor(config, rnn="gru"),
            "MLP head (paper-literal)": Prism5GPredictor(config, head="mlp"),
        }
        rmse = {}
        for name, predictor in variants.items():
            predictor.fit(train, val)
            rmse[name] = predictor.evaluate(test)
        return rmse

    rmse = run_once(benchmark, experiment)

    report.emit("=== Table 13: Prism5G ablation (RMSE, lower is better) ===")
    rows = [[name, value] for name, value in rmse.items()]
    report.emit(format_table(["Variant", "RMSE"], rows))
    full = rmse["Prism5G (full)"]
    report.emit("")
    for name in ("No State", "No Fusion"):
        delta = (rmse[name] - full) / full * 100.0
        report.emit(f"{name}: {delta:+.1f}% vs full (paper: +5.3% / +6.2% on average)")
    report.emit(f"GRU block: {(rmse['GRU block'] - full) / full * 100.0:+.1f}% vs LSTM block")
    report.emit(
        f"MLP head: {(rmse['MLP head (paper-literal)'] - full) / full * 100.0:+.1f}% vs decoder head"
        " (see DESIGN.md 5b on this substitution)"
    )

    # the full model should be at least as good as the mean ablation
    ablation_mean = np.mean([rmse["No State"], rmse["No Fusion"]])
    assert full <= ablation_mean * 1.05, "removing both mechanisms should not help"
