"""F6 — paper Fig 6: aggregated throughput is sub-additive.

Runs n41 alone, n25 alone, and n41+n25 CA at the same spot, and
quantifies how far below the sum of the stand-alone throughputs the
aggregate lands (the paper observes gaps of up to ~49%).
"""

import numpy as np

from repro.analysis import format_table, subadditivity_ratio
from repro.ran import simulate_stationary_ideal

from conftest import run_once


def test_fig6_ca_subadditivity(benchmark, scale, report):
    def experiment():
        alone_n41, alone_n25, together = [], [], []
        for seed in range(scale.seeds * 2):
            kwargs = dict(duration_s=min(scale.duration_s / 2, 30.0), seed=400 + seed)
            alone_n41.append(
                simulate_stationary_ideal("OpZ", ca_enabled=False, band_lock=["n41@2500"], **kwargs)
            )
            alone_n25.append(
                simulate_stationary_ideal("OpZ", ca_enabled=False, band_lock=["n25"], **kwargs)
            )
            together.append(
                simulate_stationary_ideal(
                    "OpZ", band_lock=["n41@2500", "n25"], max_ccs_override=2, **kwargs
                )
            )
        return alone_n41, alone_n25, together

    alone_n41, alone_n25, together = run_once(benchmark, experiment)

    n41_mean = float(np.mean([t.throughput_series().mean() for t in alone_n41]))
    n25_mean = float(np.mean([t.throughput_series().mean() for t in alone_n25]))
    agg = np.concatenate([t.throughput_series() for t in together])
    ratio = subadditivity_ratio(agg, [np.array([n41_mean]), np.array([n25_mean])])
    worst_gap = 1.0 - agg.min() / (n41_mean + n25_mean)

    report.emit("=== Fig 6: n41 / n25 alone vs aggregated (n41+n25) ===")
    rows = [
        ["n41 alone", n41_mean],
        ["n25 alone", n25_mean],
        ["theoretical sum", n41_mean + n25_mean],
        ["n41+n25 CA (mean)", float(agg.mean())],
        ["n41+n25 CA (min)", float(agg.min())],
    ]
    report.emit(format_table(["Configuration", "Throughput (Mbps)"], rows, float_fmt="{:.0f}"))
    report.emit("")
    report.emit(
        f"mean shortfall vs sum: {ratio * 100:.0f}%  |  worst instant: "
        f"{worst_gap * 100:.0f}% below the sum (paper: >= 49% at times)"
    )
    assert ratio > 0.0, "aggregate mean must fall below the stand-alone sum"
    assert worst_gap > 0.2, "instantaneous shortfalls should be substantial"
