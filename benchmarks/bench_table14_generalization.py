"""T14 — paper Table 14: generalizability of Prism5G.

(1) trace-level split: test windows come from *runs never seen* in
training (same routes);
(2) new routes: test windows come from traces simulated on different
deployments/routes entirely, normalized with the training scalers.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor, ProphetPredictor, evaluate_predictors
from repro.core.evaluation import evaluate_on_new_traces
from repro.data import SubDatasetSpec, build_subdataset, generate_traces, window_traces
from repro.apps import trace_windows_normalized

from conftest import run_once


def test_table14_generalizability(benchmark, scale, report):
    def experiment():
        spec = SubDatasetSpec("OpZ", "walking", "long")
        dataset = build_subdataset(
            spec, n_traces=max(scale.n_traces, 5), samples_per_trace=scale.samples_per_trace, seed=8
        )
        config = DeepConfig(hidden=scale.hidden, max_epochs=scale.epochs, patience=max(10, scale.epochs // 6))

        def lineup():
            return {
                "Prophet": ProphetPredictor(),
                "LSTM": LSTMPredictor(config),
                "Prism5G": Prism5GPredictor(config),
            }

        # (1) same route, different runs: trace-level split
        same_route = evaluate_predictors(dataset, lineup(), split="trace", dataset_name="same-route").rmse

        # (2) entirely new routes: fresh traces, training-set scalers
        new_trace_set = generate_traces(spec, n_traces=3, samples_per_trace=scale.samples_per_trace, seed=99)
        pieces = [trace_windows_normalized(t, dataset) for t in new_trace_set]
        pieces = [p for p in pieces if p is not None]
        new_windows = pieces[0]
        for piece in pieces[1:]:
            new_windows.x = np.concatenate([new_windows.x, piece.x])
            new_windows.mask = np.concatenate([new_windows.mask, piece.mask])
            new_windows.y = np.concatenate([new_windows.y, piece.y])
            new_windows.y_hist = np.concatenate([new_windows.y_hist, piece.y_hist])
            new_windows.trace_ids = np.concatenate([new_windows.trace_ids, piece.trace_ids])
            new_windows.y_cc = np.concatenate([new_windows.y_cc, piece.y_cc])
        new_routes = evaluate_on_new_traces(lineup(), dataset, new_windows)
        return same_route, new_routes

    same_route, new_routes = run_once(benchmark, experiment)

    report.emit("=== Table 14: generalizability (RMSE, lower is better) ===")
    rows = []
    for name in ("Prophet", "LSTM", "Prism5G"):
        rows.append([name, same_route[name], new_routes[name]])
    report.emit(format_table(["Predictor", "(1) unseen runs", "(2) new routes"], rows))

    def improvement(rmse):
        best = min(v for k, v in rmse.items() if k != "Prism5G")
        return (best - rmse["Prism5G"]) / best * 100.0

    report.emit("")
    report.emit(
        f"Prism5G improvement: unseen runs {improvement(same_route):+.1f}% "
        f"(paper: 9.4%), new routes {improvement(new_routes):+.1f}% (paper: 12.5%)"
    )
    assert same_route["Prism5G"] < same_route["Prophet"]
    assert new_routes["Prism5G"] < new_routes["Prophet"]
