"""F5 — paper Fig 5: per-combination throughput violins.

Measures several CA combinations (2-4 CCs, different bands and
bandwidths) under matched conditions and reports the violin summary
statistics.  The paper's point: aggregated bandwidth alone does not
determine performance — band composition matters.
"""

import numpy as np

from repro.analysis import ViolinSummary, format_table
from repro.ran import simulate_stationary_ideal

from conftest import run_once

#: (label, band_lock, max_ccs, aggregate bandwidth MHz)
COMBOS = [
    ("n41a+n25 (2CC, 120 MHz)", ["n41@2500", "n25"], 2, 120),
    ("n41a+n41b (2CC, 140 MHz)", ["n41@2500", "n41@2600"], 2, 140),
    ("n41a+n25+n41b (3CC, 160 MHz)", ["n41@2500", "n25", "n41@2600"], 3, 160),
    ("n41a+n71+n25+n41b (4CC, 180 MHz)", None, 4, 180),
]


def test_fig5_combination_violins(benchmark, scale, report):
    def experiment():
        summaries = []
        for label, band_lock, max_ccs, _bw in COMBOS:
            samples = []
            for seed in range(scale.seeds):
                trace = simulate_stationary_ideal(
                    "OpZ",
                    duration_s=min(scale.duration_s / 2, 30.0),
                    seed=300 + seed,
                    band_lock=band_lock,
                    max_ccs_override=max_ccs,
                )
                samples.append(trace.throughput_series())
            summaries.append(ViolinSummary.from_samples(label, np.concatenate(samples)))
        return summaries

    summaries = run_once(benchmark, experiment)

    report.emit("=== Fig 5: throughput by CA combination (violin statistics) ===")
    rows = [
        [s.label, s.mean, s.std, s.p5, s.p95, s.peak]
        for s in summaries
    ]
    report.emit(
        format_table(["Combination", "Mean", "Std", "p5", "p95", "Peak"], rows, float_fmt="{:.0f}")
    )

    by_label = {s.label: s for s in summaries}
    two_cc_mixed = by_label[COMBOS[0][0]]
    two_cc_intra = by_label[COMBOS[1][0]]
    four_cc = by_label[COMBOS[3][0]]
    report.emit("")
    report.emit(
        "Shape checks (paper Fig 5): same CC count, different bands ->"
        " different throughput; 4CC is the most consistent performer."
    )
    # n41+n41 (wide TDD) clearly beats n41+n25 (narrow FDD SCell)
    assert two_cc_intra.mean > two_cc_mixed.mean
    # the 4CC combo tops the 2CC mixed combo on mean
    assert four_cc.mean > two_cc_mixed.mean
