"""T2 — paper Table 2 / Tables 6-7: channel allocation and CA combos.

Regenerates the per-operator channel/band allocation and the observed
CA combinations with aggregated bandwidths, including the
ordered-vs-unique combination counts ("270/162"-style) the paper
reports.
"""

from collections import Counter

from repro.analysis import format_table
from repro.ran import (
    CampaignConfig,
    bands_for_rat,
    build_deployment,
    get_operator,
    run_campaign,
)

from conftest import run_once


def test_table2_channel_allocation(benchmark, scale, report):
    def experiment():
        config = CampaignConfig(
            operators=("OpX", "OpY", "OpZ"),
            scenarios=("urban",),
            rats=("4G", "5G"),
            traces_per_cell=scale.seeds,
            duration_s=scale.duration_s,
            seed=11,
        )
        return run_campaign(config)

    result = run_once(benchmark, experiment)

    # --- Table 2(a): band allocation per operator ----------------------
    report.emit("=== Table 2(a): band allocation per operator ===")
    rows = []
    for op_name in ("OpX", "OpY", "OpZ"):
        profile = get_operator(op_name)
        for plan in profile.channel_plans():
            from repro.ran import get_band

            band = get_band(plan.band_name)
            rows.append(
                [op_name, plan.band_name, band.duplex, f"{band.freq_mhz:.0f}", f"{plan.bandwidth_mhz:g}", plan.per_site]
            )
    report.emit(format_table(["Oper.", "Band", "Mode", "Freq MHz", "BW MHz", "#/site"], rows))

    # --- Table 2(b): observed CA combinations -------------------------
    report.emit("")
    report.emit("=== Table 2(b)/Table 7: observed CA combinations ===")
    rows = []
    for (operator, rat, _scenario), stats in sorted(result.stats.items()):
        label = f"{operator} {rat}"
        rows.append(
            [
                label,
                f"up to {stats.max_ccs} CCs",
                f"{stats.ordered_combos}/{stats.unique_combos}",
                f"{stats.peak_tput_mbps:.0f} Mbps peak",
            ]
        )
        for combo, count in stats.top_combos(2):
            rows.append([label, f"  {combo}", str(count), ""])
    report.emit(format_table(["Oper./RAT", "Combination", "Num (ord/uniq)", "Peak"], rows))

    # --- shape assertions mirroring the paper -------------------------
    opz_5g = result.stats[("OpZ", "5G", "urban")]
    opx_5g = result.stats[("OpX", "5G", "urban")]
    assert opz_5g.max_ccs >= 3, "OpZ aggregates 4 FR1 CCs in the paper"
    report.emit("")
    report.emit(
        f"Shape check: OpZ reaches {opz_5g.max_ccs} CCs (paper: 4 in FR1); "
        f"OpX FR1 is capped at 2 ({opx_5g.max_ccs} observed)."
    )
