"""F17 — paper Figs 17-18 (and 33-36): prediction around CC transitions.

Compares predictors on test windows whose history contains a CA event
(SCell activation/deactivation — the Z1/Z2 zones of Fig 18), and shows
the bias structure: naive extrapolators over-estimate at drops and
under-estimate at boosts, while Prism5G reacts quickly.  Also emits
Prism5G's per-CC predictions (Fig 33-34).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor, ProphetPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split

from conftest import run_once


def test_fig17_transition_zone_prediction(benchmark, scale, report):
    def experiment():
        spec = SubDatasetSpec("OpZ", "driving", "long")
        dataset = build_subdataset(
            spec, n_traces=scale.n_traces, samples_per_trace=scale.samples_per_trace, seed=4
        )
        train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
        config = DeepConfig(hidden=scale.hidden, max_epochs=scale.epochs, patience=max(10, scale.epochs // 6))
        predictors = {
            "Prophet": ProphetPredictor(),
            "LSTM": LSTMPredictor(config),
            "Prism5G": Prism5GPredictor(config),
        }
        preds = {}
        for name, predictor in predictors.items():
            predictor.fit(train, val)
            if name == "Prism5G":
                # one forward pass for both aggregate and per-CC outputs
                preds[name], per_cc = predictor.predict_all(test)
            else:
                preds[name] = predictor.predict(test)
        return test, preds, per_cc

    test, preds, per_cc = run_once(benchmark, experiment)

    # windows whose history mask changes = Z1/Z2-style transition windows
    mask_change = np.abs(np.diff(test.mask, axis=1)).sum(axis=(1, 2))
    transition = mask_change > 0
    deactivation = (np.diff(test.mask, axis=1) < 0).any(axis=(1, 2))
    activation = (np.diff(test.mask, axis=1) > 0).any(axis=(1, 2))

    report.emit("=== Figs 17-18: RMSE and bias at CC-transition windows ===")
    report.emit(
        f"{int(transition.sum())}/{len(test)} transition windows "
        f"({int(deactivation.sum())} deactivations, {int(activation.sum())} activations)"
    )
    rows = []
    for name, pred in preds.items():
        err = (pred - test.y) ** 2
        rmse_all = float(np.sqrt(err.mean()))
        rmse_trans = float(np.sqrt(err[transition].mean())) if transition.any() else float("nan")
        bias_z1 = float((pred - test.y)[deactivation].mean()) if deactivation.any() else float("nan")
        bias_z2 = float((pred - test.y)[activation].mean()) if activation.any() else float("nan")
        rows.append([name, rmse_all, rmse_trans, bias_z1, bias_z2])
    report.emit(
        format_table(
            ["Predictor", "RMSE all", "RMSE transitions", "Bias@Z1 (deact)", "Bias@Z2 (act)"],
            rows,
            float_fmt="{:+.3f}",
        )
    )

    report.emit("")
    report.emit(f"Prism5G per-CC prediction tensor (Fig 33-34): {per_cc.shape}")
    report.emit(
        "Shape check (paper Fig 18/35/36): Prophet over-estimates after"
        " deactivations (positive Z1 bias); Prism5G's transition RMSE"
        " beats the naive extrapolator's."
    )
    by_name = {row[0]: row for row in rows}
    if transition.any():
        assert by_name["Prism5G"][2] < by_name["Prophet"][2]
    if deactivation.any():
        assert by_name["Prophet"][3] > by_name["Prism5G"][3] - 0.05
