"""F26 — paper Figs 26-28: throughput by scenario, and indoor FDD-TDD CA.

(a) Fig 26: driving throughput per operator across urban / suburban /
    highway — OpZ's aggressive FR1 CA keeps it on top everywhere.
(b) Figs 27-28: indoor walking — locking out the low band (n71) costs
    coverage and throughput; FDD-TDD CA (n71 PCell + n41 SCell) is what
    keeps indoor 5G usable.
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import TraceSimulator

from conftest import run_once


def test_fig26_driving_scenarios(benchmark, scale, report):
    def experiment():
        means = {}
        for operator in ("OpX", "OpY", "OpZ"):
            for scenario in ("urban", "suburban", "highway"):
                values = []
                for seed in range(scale.seeds):
                    trace = TraceSimulator(
                        operator, scenario=scenario, mobility="driving", dt_s=1.0,
                        seed=1700 + seed, area_m=1_500.0,
                    ).run(scale.duration_s)
                    values.append(trace.throughput_series().mean())
                means[(operator, scenario)] = float(np.mean(values))
        return means

    means = run_once(benchmark, experiment)

    report.emit("=== Fig 26: mean driving throughput (Mbps) by scenario ===")
    rows = []
    for operator in ("OpX", "OpY", "OpZ"):
        rows.append(
            [operator] + [means[(operator, s)] for s in ("urban", "suburban", "highway")]
        )
    report.emit(format_table(["Oper.", "Urban", "Suburban", "Highway"], rows, float_fmt="{:.0f}"))

    report.emit("")
    report.emit(
        "Shape check (paper Fig 26): OpZ's broad FR1 CA delivers the"
        " highest suburban/highway means; urban beats highway for all."
    )
    assert means[("OpZ", "suburban")] > means[("OpX", "suburban")]
    for operator in ("OpX", "OpY", "OpZ"):
        assert means[(operator, "urban")] > 0


def test_fig28_indoor_fdd_tdd_ca(benchmark, scale, report):
    def experiment():
        with_low, without_low = [], []
        combos = []
        for seed in range(scale.seeds):
            unlocked = TraceSimulator(
                "OpZ", scenario="indoor", mobility="indoor", dt_s=1.0, seed=1800 + seed
            ).run(scale.duration_s)
            locked = TraceSimulator(
                "OpZ", scenario="indoor", mobility="indoor", dt_s=1.0, seed=1800 + seed,
                band_lock=["n41", "n25"],
            ).run(scale.duration_s)
            with_low.append(unlocked)
            without_low.append(locked)
            combos += [rec.combo_key for rec in unlocked.records if rec.n_active_ccs >= 2]
        return with_low, without_low, combos

    with_low, without_low, combos = run_once(benchmark, experiment)

    def connected_fraction(traces):
        total = sum(len(t) for t in traces)
        connected = sum(sum(1 for r in t.records if r.n_active_ccs) for t in traces)
        return connected / total

    def mean_tput(traces):
        return float(np.mean([t.throughput_series().mean() for t in traces]))

    rows = [
        ["n71 unlocked (FDD-TDD CA)", connected_fraction(with_low) * 100, mean_tput(with_low)],
        ["n71 locked out", connected_fraction(without_low) * 100, mean_tput(without_low)],
    ]
    report.emit("=== Figs 27-28: indoor walking, low band unlocked vs locked ===")
    report.emit(format_table(["Configuration", "Connected %", "Mean Mbps"], rows, float_fmt="{:.0f}"))
    if combos:
        report.emit(f"dominant indoor CA combos: {sorted(set(combos))[:4]}")

    report.emit("")
    report.emit(
        "Shape check (paper Fig 28): the FDD low band (n71) receives far"
        " more power indoors and anchors the FDD-TDD CA; locking it out"
        " degrades indoor 5G sharply."
    )
    # Fig 28's claim is about *signal power and connectivity*: the FDD
    # low band reaches indoors reliably; mid-band-only service is flaky
    # at the indoor cell edge (outages), even if its wide carrier can
    # burst higher while it lasts.
    assert connected_fraction(with_low) > connected_fraction(without_low)
    pcell_bands = [r.pcell.band_name for t in with_low for r in t.records if r.pcell]
    assert pcell_bands and np.mean([b == "n71" for b in pcell_bands]) > 0.5
