"""F8 — paper Fig 8: ViVo QoE with and without CA (vs ideal ViVo).

Case 1: single 5G channel, standard ViVo (<= 375 Mbps).
Case 2: up to 4 CCs, scaled-up ViVo (<= 750 Mbps).

The paper's finding: although CA doubles the usable bitrate, the
*relative* QoE (vs an ideal future-knowing ViVo) gets worse, because
the stock past-mean estimator cannot track CA-induced variability.
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import ViVoConfig, ViVoSimulator, relative_degradation
from repro.ran import TraceSimulator

from conftest import run_once


def _traces(scale, band_lock, max_ccs, seed0):
    traces = []
    for seed in range(scale.seeds):
        sim = TraceSimulator(
            "OpZ",
            scenario="urban",
            mobility="walking",
            dt_s=0.01,
            seed=seed0 + seed,
            band_lock=band_lock,
            max_ccs_override=max_ccs,
        )
        traces.append(sim.run(6.0))
    return traces


def test_fig8_vivo_qoe_with_without_ca(benchmark, scale, report):
    def experiment():
        out = {}
        for label, band_lock, max_ccs, max_rate in (
            ("no CA", ["n41@2500"], 1, 375.0),
            ("4CC CA", None, 4, 750.0),
        ):
            sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=max_rate))
            degradations = []
            for trace in _traces(scale, band_lock, max_ccs, 1000):
                tput = trace.throughput_series()
                ideal = sim.run_ideal(tput, trace.dt_s)
                stock = sim.run_stock(tput, trace.dt_s)
                degradations.append(relative_degradation(stock, ideal))
            out[label] = degradations
        return out

    results = run_once(benchmark, experiment)

    report.emit("=== Fig 8: stock ViVo QoE loss vs ideal ViVo ===")
    rows = []
    means = {}
    for label, degradations in results.items():
        quality = float(np.mean([d["quality_drop_pct"] for d in degradations]))
        stalls = float(np.mean([d["stall_increase_pct"] for d in degradations]))
        means[label] = (quality, stalls)
        rows.append([label, quality, stalls])
    report.emit(format_table(["Case", "Quality drop %", "Stall increase %"], rows, float_fmt="{:+.1f}"))

    report.emit("")
    report.emit(
        "Shape check (paper Fig 8): under 4CC CA the stock estimator's"
        " combined QoE loss is visibly worse than without CA."
    )
    no_ca_loss = means["no CA"][0] + max(means["no CA"][1], 0) / 10
    ca_loss = means["4CC CA"][0] + max(means["4CC CA"][1], 0) / 10
    assert ca_loss > no_ca_loss - 2.0, "CA should not make naive adaptation easier"
