"""F9 — paper Fig 9: TBS vs MCS vs resource allocation (2 MIMO layers).

Regenerates the TBS surface from the TS 38.214 computation and verifies
its monotone structure.  This is a pure-PHY benchmark (no simulation),
so it also serves as a microbenchmark of the TBS routine.
"""

import numpy as np

from repro.analysis import format_table, tbs_surface
from repro.ran.phy import SYMBOLS_PER_SLOT, transport_block_size


def test_fig9_tbs_surface(benchmark, report):
    mcs_indices = list(range(0, 28, 3))
    n_prbs = [10, 25, 50, 100, 180, 273]

    surface = benchmark(lambda: tbs_surface(mcs_indices, n_prbs, n_layers=2))

    report.emit("=== Fig 9: TBS (bits/slot) over MCS x #PRB, 2 MIMO layers ===")
    rows = [
        [f"MCS {mcs}"] + [int(surface[i, j]) for j in range(len(n_prbs))]
        for i, mcs in enumerate(mcs_indices)
    ]
    report.emit(format_table(["", *[f"{p} PRB" for p in n_prbs]], rows))

    assert np.all(np.diff(surface, axis=0) >= 0), "TBS must grow with MCS"
    assert np.all(np.diff(surface, axis=1) >= 0), "TBS must grow with PRBs"

    # symbol-count dimension of Fig 9: fewer symbols -> smaller TBS
    by_symbols = [
        transport_block_size(20, 100, 2, n_symbols=s) for s in (4, 7, 10, SYMBOLS_PER_SLOT)
    ]
    report.emit("")
    report.emit(f"TBS vs symbols/slot (MCS 20, 100 PRB): {by_symbols}")
    assert by_symbols == sorted(by_symbols)
