"""F2 — paper Fig 2 / Fig 24: CA makes throughput distributions multimodal.

Pools driving throughput samples with CA enabled vs disabled and counts
KDE modes: the paper attributes the multiple "peaks" to different CC
combinations being active in different coverage areas.
"""

import numpy as np

from repro.analysis import ViolinSummary, empirical_cdf, kde_peaks
from repro.ran import TraceSimulator

from conftest import run_once


def test_fig2_multimodal_throughput_distribution(benchmark, scale, report):
    def experiment():
        with_ca, without_ca = [], []
        for seed in range(scale.seeds * 2):
            ca_trace = TraceSimulator(
                "OpZ", scenario="urban", mobility="driving", dt_s=1.0, seed=100 + seed
            ).run(scale.duration_s)
            no_ca_trace = TraceSimulator(
                "OpZ", scenario="urban", mobility="driving", dt_s=1.0, seed=100 + seed,
                ca_enabled=False,
            ).run(scale.duration_s)
            with_ca.append(ca_trace.throughput_series())
            without_ca.append(no_ca_trace.throughput_series())
        return np.concatenate(with_ca), np.concatenate(without_ca)

    ca_samples, no_ca_samples = run_once(benchmark, experiment)

    peaks_ca = kde_peaks(ca_samples)
    peaks_no_ca = kde_peaks(no_ca_samples)

    report.emit("=== Fig 2 / Fig 24: throughput distribution modes ===")
    summary_ca = ViolinSummary.from_samples("with CA", ca_samples)
    summary_no = ViolinSummary.from_samples("no CA", no_ca_samples)
    for summary, peaks in ((summary_ca, peaks_ca), (summary_no, peaks_no_ca)):
        report.emit(
            f"{summary.label:8s}: mean {summary.mean:7.0f} Mbps, std {summary.std:6.0f}, "
            f"p95 {summary.p95:7.0f}, modes at {[f'{p:.0f}' for p in peaks]}"
        )
    values, probs = empirical_cdf(ca_samples)
    deciles = [values[np.searchsorted(probs, q)] for q in (0.1, 0.5, 0.9)]
    report.emit(f"CA CDF deciles (p10/p50/p90): {[f'{d:.0f}' for d in deciles]} Mbps")

    report.emit("")
    report.emit(
        f"Shape check: CA distribution has {len(peaks_ca)} modes vs "
        f"{len(peaks_no_ca)} without CA, and higher mean/variance — the"
        " paper's multimodality observation."
    )
    assert summary_ca.mean > summary_no.mean
    assert summary_ca.std > summary_no.std
