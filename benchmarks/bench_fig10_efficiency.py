"""F10 — paper Fig 10: spectral efficiency differs across channels/bands.

Measures bits/s/Hz per channel under good channel conditions (CQI > 12,
the paper's filter) from ideal-condition runs, plus the theoretical
per-band ceilings.
"""

import numpy as np

from repro.analysis import format_table, spectral_efficiency, theoretical_efficiency_bps_hz
from repro.ran import simulate_stationary_ideal

from conftest import run_once

#: channels probed, with their configured bandwidth (OpZ FR1 plan).
CHANNELS = {
    "n71@600": ("n71", 20.0),
    "n25@1900": ("n25", 20.0),
    "n41@2500": ("n41", 100.0),
    "n41@2600": ("n41", 40.0),
}


def test_fig10_spectral_efficiency(benchmark, scale, report):
    def experiment():
        traces = []
        for seed in range(scale.seeds):
            for key in CHANNELS:
                traces.append(
                    simulate_stationary_ideal(
                        "OpZ",
                        duration_s=min(scale.duration_s / 3, 20.0),
                        seed=600 + seed,
                        ca_enabled=False,
                        band_lock=[key],
                    )
                )
        bandwidth_by_key = {key: bw for key, (_band, bw) in CHANNELS.items()}
        return spectral_efficiency(traces, bandwidth_by_key, min_cqi=12)

    efficiencies = run_once(benchmark, experiment)
    assert efficiencies, "no channel reached CQI > 12 under ideal conditions"

    report.emit("=== Fig 10: per-channel spectral efficiency (CQI > 12) ===")
    rows = []
    for eff in efficiencies:
        theory = theoretical_efficiency_bps_hz(eff.band_name, eff.bandwidth_mhz, n_layers=4)
        rows.append(
            [eff.channel_key, f"{eff.bandwidth_mhz:g}", eff.mean_tput_mbps, eff.efficiency_bps_hz, theory]
        )
    report.emit(
        format_table(
            ["Channel", "BW MHz", "Mean Mbps", "Measured bps/Hz", "Ceiling bps/Hz"],
            rows,
            float_fmt="{:.1f}",
        )
    )

    by_key = {e.channel_key: e for e in efficiencies}
    report.emit("")
    report.emit(
        "Shape check (paper Fig 10): FDD channels (n71/n25) achieve higher"
        " bps/Hz than TDD (n41) because TDD spends slots on uplink."
    )
    if "n71@600" in by_key and "n41@2500" in by_key:
        assert by_key["n71@600"].efficiency_bps_hz > by_key["n41@2500"].efficiency_bps_hz * 0.9
