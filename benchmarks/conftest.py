"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and:

* prints the rows/series the paper reports (visible with ``-s``), and
* writes them to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
  can reference them after a run.

``REPRO_SCALE=full`` switches from the fast default configuration to a
paper-scale one (more traces, more epochs, full predictor line-up).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime."""

    full: bool
    n_traces: int
    samples_per_trace: int
    epochs: int
    hidden: int
    seeds: int  #: number of repetition seeds for measurement benches
    duration_s: float  #: per-trace duration for measurement benches


def current_scale() -> Scale:
    if os.environ.get("REPRO_SCALE") == "full":
        return Scale(
            full=True, n_traces=10, samples_per_trace=400, epochs=120,
            hidden=32, seeds=6, duration_s=120.0,
        )
    return Scale(
        full=False, n_traces=4, samples_per_trace=200, epochs=40,
        hidden=24, seeds=3, duration_s=60.0,
    )


@pytest.fixture(scope="session")
def scale() -> Scale:
    return current_scale()


class Reporter:
    """Collects lines, prints them, and persists them per benchmark."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def emit(self, text: str = "") -> None:
        for line in text.splitlines() or [""]:
            self.lines.append(line)
        print(text)

    def close(self) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text("\n".join(self.lines) + "\n")


@pytest.fixture
def report(request) -> Reporter:
    reporter = Reporter(request.node.name)
    yield reporter
    reporter.close()


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
