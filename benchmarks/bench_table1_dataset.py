"""T1 — paper Table 1: overall statistics of the collected CA dataset.

Regenerates the dataset-statistics row block: operators, frequency
channels, CA combinations, mobilities and cumulative trace volume —
from a synthetic campaign instead of the authors' drive tests.
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import CampaignConfig, analyze_traces, run_campaign

from conftest import run_once


def test_table1_dataset_statistics(benchmark, scale, report):
    def experiment():
        config = CampaignConfig(
            operators=("OpX", "OpY", "OpZ"),
            scenarios=("urban", "suburban", "highway"),
            rats=("4G", "5G"),
            traces_per_cell=max(1, scale.seeds // 2),
            duration_s=scale.duration_s,
            seed=1,
        )
        return run_campaign(config)

    result = run_once(benchmark, experiment)

    channels_4g = set()
    channels_5g = set()
    combos_4g = set()
    combos_5g = set()
    for trace in result.traces:
        channels = channels_4g if trace.rat == "4G" else channels_5g
        combos = combos_4g if trace.rat == "4G" else combos_5g
        for rec in trace.records:
            active = [cc for cc in rec.ccs if cc.active]
            if not active:
                continue
            channels.update(cc.channel_key for cc in active)
            if len(active) >= 2:
                combos.add(frozenset(cc.channel_key for cc in active))

    minutes = result.traces.total_duration_s() / 60.0
    report.emit("=== Table 1: dataset statistics (paper values in parentheses) ===")
    rows = [
        ["Operators", "OpX, OpY, OpZ (3 major US operators)"],
        ["# Freq. channels 4G", f"{len(channels_4g)} (paper: 86)"],
        ["# Freq. channels 5G", f"{len(channels_5g)} (paper: 44)"],
        ["# CA combos 4G", f"{len(combos_4g)} (paper: 511)"],
        ["# CA combos 5G", f"{len(combos_5g)} (paper: 61)"],
        ["Mobilities", "Stationary, Walking, Driving"],
        ["Scenarios", "Urban, Suburban, Beltway(Highway), Indoor"],
        ["Cumulative traces", f"{len(result.traces)} traces, {minutes:.0f} min"],
    ]
    report.emit(format_table(["Field", "Value"], rows))
    report.emit("")
    report.emit("Shape check: 4G has more channels & far more combinations than 5G,")
    report.emit("matching the paper (legacy spectrum is more fragmented).")
    assert len(channels_4g) > len(channels_5g) or len(combos_4g) >= len(combos_5g)
