"""F1 — paper Fig 1 / Fig 23: CA boosts throughput under ideal conditions.

Sweeps the CC cap for each operator with a stationary line-of-sight UE
and reports the mean/peak downlink throughput staircase, including the
mmWave 8CC runs (OpX n260 / OpY n261) and 4G 5CC.
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import simulate_stationary_ideal

from conftest import run_once


def _sweep(operator, rat, cc_values, scale, band_lock=None, distance_m=60.0):
    rows = []
    for k in cc_values:
        means, peaks = [], []
        for seed in range(scale.seeds):
            trace = simulate_stationary_ideal(
                operator,
                rat=rat,
                duration_s=min(scale.duration_s / 2, 30.0),
                seed=10 * k + seed,
                max_ccs_override=k,
                band_lock=band_lock,
                distance_m=distance_m,
            )
            series = trace.throughput_series()
            means.append(series.mean())
            peaks.append(series.max())
        rows.append((k, float(np.mean(means)), float(np.max(peaks))))
    return rows


def test_fig1_ideal_condition_ca_staircase(benchmark, scale, report):
    def experiment():
        return {
            ("OpZ", "5G FR1"): _sweep("OpZ", "5G", [1, 2, 3, 4], scale),
            ("OpZ", "4G"): _sweep("OpZ", "4G", [1, 3, 5], scale),
            ("OpY", "5G mmWave"): _sweep("OpY", "5G", [1, 4, 8], scale, band_lock=["n261"], distance_m=40.0),
            ("OpX", "5G mmWave"): _sweep("OpX", "5G", [1, 4, 8], scale, band_lock=["n260"], distance_m=40.0),
        }

    results = run_once(benchmark, experiment)

    report.emit("=== Fig 1 / Fig 23: ideal-condition throughput vs #CC ===")
    rows = []
    for (operator, label), sweep in results.items():
        for k, mean, peak in sweep:
            rows.append([operator, label, k, mean, peak])
    report.emit(format_table(["Oper.", "Tech", "#CC", "Mean Mbps", "Peak Mbps"], rows, float_fmt="{:.0f}"))

    # shape assertions: the staircase rises, mmWave 8CC is the overall peak
    fr1 = dict((k, m) for k, m, _ in results[("OpZ", "5G FR1")])
    # our 1CC baseline is the *best* single carrier (100 MHz n41) under
    # ideal conditions, so the CA gain is smaller than the paper's ~2x
    # (whose no-CA baseline reflects typical, not best-case, anchors)
    assert fr1[4] > 1.15 * fr1[1], "4CC must clearly beat 1CC"
    mmwave_peak = max(p for _, _, p in results[("OpY", "5G mmWave")])
    fr1_peak = max(p for _, _, p in results[("OpZ", "5G FR1")])
    assert mmwave_peak > fr1_peak, "paper: mmWave 8CC peak (4.1G) > FR1 4CC peak (1.7G)"
    lte = dict((k, m) for k, m, _ in results[("OpZ", "4G")])
    assert lte[5] > lte[1], "4G CA staircase must rise"
    report.emit("")
    report.emit(
        f"Shape check: FR1 4CC mean {fr1[4]:.0f} Mbps (paper ~1.5 Gbps); "
        f"mmWave 8CC peak {mmwave_peak:.0f} Mbps (paper 4.1 Gbps); "
        f"4G 5CC mean {lte[5]:.0f} Mbps."
    )
