"""F4 — paper Fig 4 / Fig 25: CA prevalence and the spatial CC map.

Drives each operator through each scenario and reports the fraction of
samples served by >= 2 CCs (Fig 25), plus a Fig 4-style spatial map of
the mean CC count over a grid for one OpZ urban drive.
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import CampaignConfig, cc_spatial_map, run_campaign

from conftest import run_once


def test_fig4_ca_prevalence_and_spatial_map(benchmark, scale, report):
    def experiment():
        config = CampaignConfig(
            operators=("OpX", "OpY", "OpZ"),
            scenarios=("urban", "suburban", "highway"),
            rats=("5G", "4G"),
            traces_per_cell=scale.seeds,
            duration_s=scale.duration_s,
            seed=23,
        )
        return run_campaign(config)

    result = run_once(benchmark, experiment)

    report.emit("=== Fig 25: CA prevalence (fraction of samples with >=2 CCs) ===")
    rows = []
    for (operator, rat, scenario), stats in sorted(result.stats.items()):
        rows.append([operator, rat, scenario, f"{stats.ca_prevalence * 100:.0f}%"])
    report.emit(format_table(["Oper.", "RAT", "Scenario", "CA prevalence"], rows))

    table = result.prevalence_table()
    averages = {op: float(np.mean(list(v.values()))) for op, v in table.items()}
    report.emit("")
    report.emit(
        "5G averages: "
        + ", ".join(f"{op} {avg * 100:.0f}%" for op, avg in sorted(averages.items()))
        + "  (paper: OpX 24%, OpY 44%, OpZ 86%)"
    )
    assert averages["OpZ"] > averages["OpY"] >= 0.0
    assert averages["OpZ"] > averages["OpX"]

    # 4G CA should be near-ubiquitous for every operator (paper Fig 25)
    for (operator, rat, scenario), stats in result.stats.items():
        if rat == "4G":
            assert stats.ca_prevalence > 0.5, f"4G CA should be widespread ({operator}/{scenario})"

    report.emit("")
    report.emit("=== Fig 4: spatial mean-CC map, OpZ urban drive (150 m grid) ===")
    opz_urban = result.traces.filter(operator="OpZ", scenario="urban", rat="5G")
    grid = cc_spatial_map(opz_urban[0], grid_m=150.0)
    for (gx, gy), mean_ccs in sorted(grid.items()):
        report.emit(f"  cell ({gx:+d},{gy:+d}): {'#' * int(round(mean_ccs))} {mean_ccs:.1f}")
    assert max(grid.values()) >= 2.0
