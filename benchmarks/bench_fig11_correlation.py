"""F11 — paper Figs 11-13: intra- vs inter-band correlation structure.

For intra-band CA (n41+n41) and inter-band CA (n41+n25), computes the
Pearson correlations between each CC's RSRP and each CC's throughput,
and between the two RSRPs.  Paper: own-channel correlations are strong
(> 0.6) everywhere; cross-channel correlations stay high intra-band but
collapse inter-band — the case for per-CC modeling.
"""

import numpy as np

from repro.analysis import cross_correlations, format_table
from repro.ran import TraceSimulator

from conftest import run_once


def _collect(band_lock, pcell_key, scell_key, scale, seed0):
    corrs = []
    for seed in range(scale.seeds):
        sim = TraceSimulator(
            "OpZ",
            scenario="urban",
            mobility="walking",
            dt_s=1.0,
            seed=seed0 + seed,
            band_lock=band_lock,
            max_ccs_override=2,
        )
        trace = sim.run(scale.duration_s * 2)
        try:
            corrs.append(cross_correlations(trace, pcell_key, scell_key))
        except ValueError:
            continue
    return corrs


def test_fig11_intra_vs_inter_band_correlations(benchmark, scale, report):
    def experiment():
        intra = _collect(["n41@2500", "n41@2600"], "n41@2500", "n41@2600", scale, 700)
        inter = _collect(["n41@2500", "n25"], "n41@2500", "n25@1900", scale, 800)
        return intra, inter

    intra, inter = run_once(benchmark, experiment)
    assert intra and inter, "no overlapping CA activity collected"

    def mean_of(corrs, field):
        return float(np.mean([getattr(c, field) for c in corrs]))

    fields = [
        ("PCell RSRP vs PCell Tput", "pcell_rsrp_vs_pcell_tput"),
        ("SCell RSRP vs SCell Tput", "scell_rsrp_vs_scell_tput"),
        ("PCell RSRP vs SCell Tput", "pcell_rsrp_vs_scell_tput"),
        ("SCell RSRP vs PCell Tput", "scell_rsrp_vs_pcell_tput"),
        ("PCell RSRP vs SCell RSRP (Fig 13)", "pcell_rsrp_vs_scell_rsrp"),
    ]
    report.emit("=== Figs 11-13: Pearson correlations, intra- vs inter-band CA ===")
    rows = [
        [label, mean_of(intra, field), mean_of(inter, field)]
        for label, field in fields
    ]
    report.emit(
        format_table(["Correlation", "Intra (n41+n41)", "Inter (n41+n25)"], rows, float_fmt="{:+.2f}")
    )

    intra_rsrp = mean_of(intra, "pcell_rsrp_vs_scell_rsrp")
    inter_rsrp = mean_of(inter, "pcell_rsrp_vs_scell_rsrp")
    report.emit("")
    report.emit(
        f"Shape check: intra-band RSRPs track each other (r={intra_rsrp:+.2f})"
        f" far more than inter-band (r={inter_rsrp:+.2f}) — Fig 13."
    )
    assert intra_rsrp > inter_rsrp + 0.1
    # cross-channel predictions degrade more inter-band than intra-band
    intra_cross = mean_of(intra, "pcell_rsrp_vs_scell_tput")
    inter_cross = mean_of(inter, "pcell_rsrp_vs_scell_tput")
    assert intra_cross > inter_cross - 0.05
