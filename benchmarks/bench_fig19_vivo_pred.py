"""F19 — paper Fig 19: ViVo + {Prophet, LSTM, Prism5G} vs ideal ViVo.

Replaces ViVo's stock bandwidth estimator with trained predictors at
the fast (10 ms) time scale and measures QoE against the ideal run.
Paper: ViVo+Prism5G is near-optimal; LSTM improves but is not close;
Prophet trades stalls for quality.
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import ViVoConfig, ViVoSimulator, predicted_bandwidth_series, relative_degradation
from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor, ProphetPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.ran import TraceSimulator

from conftest import run_once


def test_fig19_vivo_with_predictors(benchmark, scale, report):
    def experiment():
        spec = SubDatasetSpec("OpZ", "walking", "short")
        dataset = build_subdataset(
            spec, n_traces=scale.n_traces, samples_per_trace=min(scale.samples_per_trace, 250), seed=12
        )
        train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
        config = DeepConfig(hidden=scale.hidden, max_epochs=max(20, scale.epochs // 2), patience=10)
        predictors = {
            "Prophet": ProphetPredictor(),
            "LSTM": LSTMPredictor(config),
            "Prism5G": Prism5GPredictor(config),
        }
        for predictor in predictors.values():
            predictor.fit(train, val)

        sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=750.0))
        degradations = {name: [] for name in predictors}
        degradations["stock"] = []
        for seed in range(scale.seeds):
            trace = TraceSimulator(
                "OpZ", scenario="urban", mobility="walking", dt_s=0.01, seed=1100 + seed,
                max_ccs_override=4,
            ).run(6.0)
            tput = trace.throughput_series()
            ideal = sim.run_ideal(tput, trace.dt_s)
            degradations["stock"].append(relative_degradation(sim.run_stock(tput, trace.dt_s), ideal))
            for name, predictor in predictors.items():
                estimates = predicted_bandwidth_series(predictor, trace, dataset)
                result = sim.run(tput, trace.dt_s, estimates)
                degradations[name].append(relative_degradation(result, ideal))
        return degradations

    degradations = run_once(benchmark, experiment)

    report.emit("=== Fig 19: ViVo QoE loss vs ideal, by bandwidth estimator ===")
    rows = []
    summary = {}
    for name, values in degradations.items():
        quality = float(np.mean([v["quality_drop_pct"] for v in values]))
        stalls = float(np.mean([v["stall_increase_pct"] for v in values]))
        summary[name] = quality + max(stalls, 0.0) / 10.0
        rows.append([name, quality, stalls])
    report.emit(format_table(["Estimator", "Quality drop %", "Stall increase %"], rows, float_fmt="{:+.1f}"))

    report.emit("")
    report.emit(
        "Shape check (paper Fig 19): ViVo+Prism5G is the closest to ideal"
        " (near-optimal); the naive stock estimator is the farthest."
    )
    assert summary["Prism5G"] <= summary["stock"] + 1.0
    assert summary["Prism5G"] <= summary["Prophet"] + 1.0
