"""F14 — paper Figs 14-15: the same channel behaves differently under CA.

Fig 14: n25 with and without CA at the same spot — similar RSRP/CQI,
but fewer MIMO layers (power reallocation) and roughly half the
throughput under CA.

Fig 15: the same n41 (40 MHz) SCell inside different CA combinations —
same RSRP/CQI and layers, but different #RB (scheduler throttling of
wide marginal aggregations).
"""

import numpy as np

from repro.analysis import format_table
from repro.ran import simulate_stationary_ideal

from conftest import run_once


def _cc_stats(traces, channel_key):
    rsrp, cqi, layers, rbs, tput = [], [], [], [], []
    for trace in traces:
        for rec in trace.records:
            for cc in rec.ccs:
                if cc.active and cc.channel_key == channel_key:
                    rsrp.append(cc.rsrp_dbm)
                    cqi.append(cc.cqi)
                    layers.append(cc.n_layers)
                    rbs.append(cc.n_rb)
                    tput.append(cc.tput_mbps)
    if not tput:
        raise AssertionError(f"channel {channel_key} never active")
    return {
        "rsrp": float(np.mean(rsrp)),
        "cqi": float(np.mean(cqi)),
        "layers": float(np.mean(layers)),
        "rb": float(np.mean(rbs)),
        "tput": float(np.mean(tput)),
    }


def test_fig14_same_channel_with_without_ca(benchmark, scale, report):
    def experiment():
        duration = min(scale.duration_s / 2, 30.0)
        alone, in_ca = [], []
        for seed in range(scale.seeds):
            alone.append(
                simulate_stationary_ideal(
                    "OpZ", duration_s=duration, seed=900 + seed, ca_enabled=False, band_lock=["n25"]
                )
            )
            in_ca.append(
                simulate_stationary_ideal(
                    "OpZ",
                    duration_s=duration,
                    seed=900 + seed,
                    band_lock=["n41@2500", "n25", "n41@2600"],
                    max_ccs_override=3,
                )
            )
        return _cc_stats(alone, "n25@1900"), _cc_stats(in_ca, "n25@1900")

    alone, in_ca = run_once(benchmark, experiment)

    report.emit("=== Fig 14: n25 alone vs inside n41+n25+n41 CA ===")
    rows = [
        [field, alone[field], in_ca[field]]
        for field in ("rsrp", "cqi", "layers", "rb", "tput")
    ]
    report.emit(format_table(["Metric", "NonCA n25", "CA n25"], rows, float_fmt="{:.1f}"))
    report.emit("")
    report.emit(
        "Shape check (paper Fig 14): RSRP/CQI similar, MIMO layers cut"
        f" ({alone['layers']:.1f} -> {in_ca['layers']:.1f}),"
        f" throughput roughly halved ({alone['tput']:.0f} -> {in_ca['tput']:.0f} Mbps)."
    )
    assert abs(alone["rsrp"] - in_ca["rsrp"]) < 6.0, "RSRP should be comparable"
    assert in_ca["layers"] < alone["layers"], "CA must reduce the n25 MIMO rank"
    assert in_ca["tput"] < 0.7 * alone["tput"], "CA roughly halves the n25 throughput"


def test_fig15_same_scell_in_different_combos(benchmark, scale, report):
    def experiment():
        duration = min(scale.duration_s / 2, 30.0)
        narrow, wide = [], []
        for seed in range(scale.seeds):
            # n41b as SCell in a 2CC combo (100+40 MHz aggregate)
            narrow.append(
                simulate_stationary_ideal(
                    "OpZ",
                    duration_s=duration,
                    seed=950 + seed,
                    band_lock=["n41@2500", "n41@2600"],
                    max_ccs_override=2,
                )
            )
            # n41b as the marginal SCell of a 4CC combo (180 MHz aggregate)
            wide.append(
                simulate_stationary_ideal(
                    "OpZ", duration_s=duration, seed=950 + seed, max_ccs_override=4
                )
            )
        return _cc_stats(narrow, "n41@2600"), _cc_stats(wide, "n41@2600")

    narrow, wide = run_once(benchmark, experiment)

    report.emit("=== Fig 15: the n41 (40 MHz) SCell in different CA combos ===")
    rows = [
        [field, narrow[field], wide[field]]
        for field in ("rsrp", "cqi", "layers", "rb", "tput")
    ]
    report.emit(format_table(["Metric", "2CC combo", "4CC combo"], rows, float_fmt="{:.1f}"))
    report.emit("")
    report.emit(
        "Shape check (paper Fig 15): similar RSRP/CQI, but the marginal"
        f" SCell gets fewer RBs in the wide combo ({narrow['rb']:.0f} ->"
        f" {wide['rb']:.0f}) and lower throughput."
    )
    assert wide["rb"] < narrow["rb"], "wide aggregation must throttle the marginal SCell's RBs"
    assert wide["tput"] < narrow["tput"]
