"""PERF — wall-clock benchmark for the batched-path perf PRs.

Times a Table-4-style workload (synthesize one sub-dataset, train +
predict an LSTM and a Prism5G model) along two code paths:

* **legacy** — the loop-oracle path: serial uncached trace synthesis
  with the scalar per-cell radio update, op-by-op RNN composition
  (fused kernels off), per-carrier Prism5G loops (CC folding off), and
  graph-building grad-mode prediction;
* **current** — the shipped path: warm on-disk trace cache, vectorized
  radio update, fused sequence kernels, carrier-folded Prism5G, and
  ``no_grad`` prediction.

Both model phases train on the *same* dataset (built by the current
path) so ``predictions_match`` isolates the NN paths' bit-identity;
the simulator paths differ at ulp level (numpy vs math transcendentals)
and are compared per-field by the equivalence tests instead.  A
``stages_s`` section records per-stage micro-timings of each folded
path against its loop oracle.

Every phase is timed best-of-3 (training is seeded, so repeats do
identical work): single-shot wall clocks on shared hosts are dominated
by scheduler noise — the same code has measured 2-3x apart run to run.
Results (per-phase seconds, end-to-end totals, speedup) go to
``BENCH_perf.json`` at the repo root.  The first run records itself as
the regression baseline; later runs update ``latest`` only.

Run as a script (``scripts/perf_smoke.sh`` does this)::

    PYTHONPATH=src python benchmarks/bench_perf_training.py [--check]

``--check`` exits non-zero when the current end-to-end time regresses
by more than 2x against the recorded baseline.  Under pytest the same
workload runs as a ``slow``-marked benchmark test.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"
RESULT_SCHEMA = "bench-perf-v1"
REGRESSION_FACTOR = 2.0


def _workload_params() -> Dict:
    full = os.environ.get("REPRO_SCALE") == "full"
    return {
        "scale": "full" if full else "fast",
        "operator": "OpX",
        "mobility": "walking",
        "timescale": "long",
        "n_traces": 10 if full else 4,
        "samples_per_trace": 400 if full else 200,
        "hidden": 32 if full else 24,
        "lstm_epochs": 12 if full else 6,
        "prism_epochs": 8 if full else 4,
    }


def _grad_mode_predict(predictor, dataset) -> np.ndarray:
    """Emulate the pre-PR prediction loop: full graph construction."""
    trainer = predictor.trainer
    x = predictor._packed(dataset)
    outputs = []
    for start in range(0, len(x), trainer.batch_size):
        pred = trainer.forward_fn(trainer.model, x[start : start + trainer.batch_size])
        outputs.append(np.asarray(pred.numpy(), dtype=np.float64))
    return np.concatenate(outputs, axis=0)


def _stage_timings(dataset, params) -> Dict[str, float]:
    """Micro-timings of each folded path against its loop oracle.

    Times one forward+backward of the carrier-folded Prism5G vs the
    per-CC loop, one fused decoder rollout vs the op-by-op loop, and one
    vectorized radio step vs the scalar per-cell loop.
    """
    from repro.core.prism5g import Prism5G, batched_cc, pack_inputs
    from repro.nn import Tensor
    from repro.ran.simulator import TraceSimulator, vectorized_radio

    stages: Dict[str, float] = {}

    def best_of(fn, repeat=7) -> float:
        # best-of-N: single-shot timings on shared hosts are dominated
        # by scheduler noise (observed 2-3x spikes on identical code)
        times = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    windows = dataset.windows
    packed = pack_inputs(windows.x, windows.mask, windows.y_hist)
    model = Prism5G(
        n_ccs=windows.n_ccs, n_features=windows.x.shape[3],
        horizon=windows.horizon, hidden=params["hidden"],
    )

    # one training step at the trainer's batch size — the shape
    # prism_train actually runs; folding wins by collapsing C
    # per-carrier kernel calls into one C-times-taller call
    batch = packed[: min(128, len(packed))]

    def fwd_bwd() -> None:
        loss = (model(Tensor(batch)) ** 2).mean()
        model.zero_grad()
        loss.backward()

    with batched_cc(False):
        stages["prism_fwd_bwd_loop"] = best_of(fwd_bwd)
    with batched_cc(True):
        stages["prism_fwd_bwd_folded"] = best_of(fwd_bwd)

    # decoder rollout over every (sample, carrier) state: the loop
    # oracle is the op-by-op step loop; the fused path is exactly what
    # _forward_folded ships — per-carrier lstm_decoder_seq calls so the
    # step arrays stay L2-resident (see _FOLD_CHUNK_ROWS)
    n = len(packed)
    h0 = Tensor(np.zeros((n * windows.n_ccs, params["hidden"])))
    h0_parts = [Tensor(np.zeros((n, params["hidden"]))) for _ in range(windows.n_ccs)]
    stages["decoder_rollout_loop"] = best_of(lambda: model._decode_loop(h0))
    stages["decoder_rollout_fused"] = best_of(
        lambda: [model._decode(part) for part in h0_parts]
    )

    def sim_steps(vec: bool) -> None:
        with vectorized_radio(vec):
            sim = TraceSimulator(operator=params["operator"], seed=11, dt_s=0.1)
            sim.run(30.0)

    stages["sim_300_steps_loop"] = best_of(lambda: sim_steps(False), repeat=5)
    stages["sim_300_steps_vec"] = best_of(lambda: sim_steps(True), repeat=5)
    return stages


def _tune_allocator() -> None:
    """Raise glibc's mmap threshold so multi-MB activation buffers are
    recycled from the heap instead of being mmap'd and page-faulted anew
    on every training step.  Linux-only, best effort; results are
    bit-identical either way — this only changes where buffers live.
    """
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.mallopt(-3, 512 * 1024 * 1024)  # M_MMAP_THRESHOLD
    except (OSError, AttributeError):  # pragma: no cover - non-glibc hosts
        pass


def run_workload(emit=print) -> Dict:
    """Time the legacy and current paths; return the result record."""
    from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor
    from repro.core.prism5g import batched_cc
    from repro.data import SubDatasetSpec, TraceCache, build_subdataset, random_split
    from repro.nn.modules import fused_kernels
    from repro.ran.simulator import vectorized_radio

    _tune_allocator()

    params = _workload_params()
    spec = SubDatasetSpec(params["operator"], params["mobility"], params["timescale"])
    build_kwargs = dict(
        n_traces=params["n_traces"], samples_per_trace=params["samples_per_trace"]
    )

    def lstm_config() -> DeepConfig:
        return DeepConfig(
            hidden=params["hidden"], max_epochs=params["lstm_epochs"],
            patience=params["lstm_epochs"],
        )

    def prism_config() -> DeepConfig:
        return DeepConfig(
            hidden=params["hidden"], max_epochs=params["prism_epochs"],
            patience=params["prism_epochs"],
        )

    legacy: Dict[str, float] = {}
    current: Dict[str, float] = {}

    def timed(fn, repeat: int = 3):
        """Best-of-N wall clock (shared hosts show 2-3x scheduler spikes).

        Training is seeded and deterministic, so every repeat does
        identical work and returns an identical result.
        """
        best, result = float("inf"), None
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    # --- legacy synthesis: serial, uncached, scalar per-cell radio ---
    with vectorized_radio(False):
        legacy["synthesize"], _ = timed(
            lambda: build_subdataset(spec, cache=None, processes=1, **build_kwargs)
        )

    # --- current synthesis: warm on-disk cache, vectorized radio ---
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = TraceCache(cache_dir)
        build_subdataset(spec, cache=cache, **build_kwargs)  # prime (cold, parallel)
        current["synthesize"], dataset = timed(
            lambda: build_subdataset(spec, cache=cache, **build_kwargs)
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    # both model phases train on this dataset so predictions_match
    # isolates the NN paths (bit-identical by construction)
    train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)

    def fit_lstm():
        predictor = LSTMPredictor(lstm_config())
        predictor.fit(train, val)
        return predictor

    def fit_prism():
        predictor = Prism5GPredictor(prism_config())
        predictor.fit(train, val)
        return predictor

    # --- legacy models: op-by-op kernels, per-CC loops, grad-mode ---
    with fused_kernels(False), batched_cc(False):
        legacy["lstm_train"], lstm = timed(fit_lstm)
        legacy["lstm_predict"], lstm_pred_legacy = timed(
            lambda: _grad_mode_predict(lstm, test)
        )
        legacy["prism_train"], prism = timed(fit_prism)
        legacy["prism_predict"], prism_pred_legacy = timed(
            lambda: _grad_mode_predict(prism, test)[:, : test.horizon]
        )

    # --- current models: fused kernels, CC folding, no_grad predict ---
    current["lstm_train"], lstm = timed(fit_lstm)
    current["lstm_predict"], lstm_pred = timed(lambda: lstm.predict(test))
    current["prism_train"], prism = timed(fit_prism)
    current["prism_predict"], prism_pred = timed(lambda: prism.predict(test))

    legacy["end_to_end"] = sum(legacy.values())
    current["end_to_end"] = sum(current.values())
    predictions_match = bool(
        np.allclose(lstm_pred, lstm_pred_legacy, rtol=1e-9, atol=1e-12)
        and np.allclose(prism_pred, prism_pred_legacy, rtol=1e-9, atol=1e-12)
    )
    stages = _stage_timings(dataset, params)

    record = {
        "workload": params,
        "legacy_s": {k: round(v, 4) for k, v in legacy.items()},
        "current_s": {k: round(v, 4) for k, v in current.items()},
        "stages_s": {k: round(v, 4) for k, v in stages.items()},
        "speedup": round(legacy["end_to_end"] / current["end_to_end"], 2),
        "predictions_match": predictions_match,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }

    emit("=== PERF: legacy vs current wall-clock (seconds) ===")
    emit(f"{'phase':<14}{'legacy':>10}{'current':>10}{'speedup':>9}")
    for phase in ("synthesize", "lstm_train", "lstm_predict", "prism_train", "prism_predict", "end_to_end"):
        ratio = legacy[phase] / current[phase] if current[phase] > 0 else float("inf")
        emit(f"{phase:<14}{legacy[phase]:>10.3f}{current[phase]:>10.3f}{ratio:>8.1f}x")
    emit(f"predictions match: {predictions_match}")
    emit("--- per-stage folded vs loop (seconds) ---")
    for loop_key, fold_key in (
        ("prism_fwd_bwd_loop", "prism_fwd_bwd_folded"),
        ("decoder_rollout_loop", "decoder_rollout_fused"),
        ("sim_300_steps_loop", "sim_300_steps_vec"),
    ):
        ratio = stages[loop_key] / stages[fold_key] if stages[fold_key] > 0 else float("inf")
        emit(f"{fold_key:<24}{stages[loop_key]:>10.4f}{stages[fold_key]:>10.4f}{ratio:>8.1f}x")
    return record


def load_results() -> Dict:
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
            if results.get("schema") == RESULT_SCHEMA:
                return results
        except (ValueError, OSError):
            pass
    return {"schema": RESULT_SCHEMA}


def save_results(record: Dict) -> Dict:
    """Merge ``record`` into BENCH_perf.json; first run becomes baseline."""
    results = load_results()
    if "baseline" not in results:
        results["baseline"] = record
    results["latest"] = record
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def check_regression(results: Dict, emit=print) -> bool:
    """True when the latest run is within REGRESSION_FACTOR of baseline."""
    baseline = results.get("baseline")
    latest = results.get("latest")
    if not baseline or not latest:
        emit("no baseline recorded yet; nothing to check")
        return True
    base_total = baseline["current_s"]["end_to_end"]
    latest_total = latest["current_s"]["end_to_end"]
    ratio = latest_total / base_total if base_total > 0 else float("inf")
    ok = ratio <= REGRESSION_FACTOR
    emit(
        f"regression check: latest {latest_total:.3f}s vs baseline {base_total:.3f}s "
        f"({ratio:.2f}x, limit {REGRESSION_FACTOR:.1f}x) -> {'OK' if ok else 'FAIL'}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail when end-to-end time regresses >{REGRESSION_FACTOR}x vs the recorded baseline",
    )
    args = parser.parse_args(argv)
    record = run_workload()
    results = save_results(record)
    print(f"wrote {RESULT_PATH}")
    if args.check and not check_regression(results):
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (slow; excluded from the default tier-1 run)
try:
    import pytest

    from conftest import run_once

    @pytest.mark.slow
    def test_perf_training(benchmark, report):
        record = run_once(benchmark, lambda: run_workload(emit=report.emit))
        results = save_results(record)
        assert record["predictions_match"]
        assert check_regression(results, emit=report.emit)

except ImportError:  # pragma: no cover - script mode without pytest
    pass


if __name__ == "__main__":
    sys.exit(main())
