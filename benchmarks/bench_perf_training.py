"""PERF — wall-clock benchmark for the fused-kernel / no-grad / cache PR.

Times a Table-4-style workload (synthesize one sub-dataset, train +
predict an LSTM and a Prism5G model) along two code paths:

* **legacy** — the pre-PR path: serial uncached trace synthesis,
  op-by-op RNN composition (fused kernels off), and graph-building
  grad-mode prediction;
* **current** — the shipped path: warm on-disk trace cache, fused
  sequence kernels, and ``no_grad`` prediction.

Results (per-phase seconds, end-to-end totals, speedup) go to
``BENCH_perf.json`` at the repo root.  The first run records itself as
the regression baseline; later runs update ``latest`` only.

Run as a script (``scripts/perf_smoke.sh`` does this)::

    PYTHONPATH=src python benchmarks/bench_perf_training.py [--check]

``--check`` exits non-zero when the current end-to-end time regresses
by more than 2x against the recorded baseline.  Under pytest the same
workload runs as a ``slow``-marked benchmark test.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"
RESULT_SCHEMA = "bench-perf-v1"
REGRESSION_FACTOR = 2.0


def _workload_params() -> Dict:
    full = os.environ.get("REPRO_SCALE") == "full"
    return {
        "scale": "full" if full else "fast",
        "operator": "OpX",
        "mobility": "walking",
        "timescale": "long",
        "n_traces": 10 if full else 4,
        "samples_per_trace": 400 if full else 200,
        "hidden": 32 if full else 24,
        "lstm_epochs": 12 if full else 6,
        "prism_epochs": 8 if full else 4,
    }


def _grad_mode_predict(predictor, dataset) -> np.ndarray:
    """Emulate the pre-PR prediction loop: full graph construction."""
    trainer = predictor.trainer
    x = predictor._packed(dataset)
    outputs = []
    for start in range(0, len(x), trainer.batch_size):
        pred = trainer.forward_fn(trainer.model, x[start : start + trainer.batch_size])
        outputs.append(np.asarray(pred.numpy(), dtype=np.float64))
    return np.concatenate(outputs, axis=0)


def run_workload(emit=print) -> Dict:
    """Time the legacy and current paths; return the result record."""
    from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor
    from repro.data import SubDatasetSpec, TraceCache, build_subdataset, random_split
    from repro.nn.modules import fused_kernels

    params = _workload_params()
    spec = SubDatasetSpec(params["operator"], params["mobility"], params["timescale"])
    build_kwargs = dict(
        n_traces=params["n_traces"], samples_per_trace=params["samples_per_trace"]
    )

    def lstm_config() -> DeepConfig:
        return DeepConfig(
            hidden=params["hidden"], max_epochs=params["lstm_epochs"],
            patience=params["lstm_epochs"],
        )

    def prism_config() -> DeepConfig:
        return DeepConfig(
            hidden=params["hidden"], max_epochs=params["prism_epochs"],
            patience=params["prism_epochs"],
        )

    legacy: Dict[str, float] = {}
    current: Dict[str, float] = {}

    # --- legacy path: serial, uncached, op-by-op, grad-mode predict ---
    with fused_kernels(False):
        t0 = time.perf_counter()
        dataset = build_subdataset(spec, cache=None, processes=1, **build_kwargs)
        legacy["synthesize"] = time.perf_counter() - t0
        train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)

        lstm = LSTMPredictor(lstm_config())
        t0 = time.perf_counter()
        lstm.fit(train, val)
        legacy["lstm_train"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        lstm_pred_legacy = _grad_mode_predict(lstm, test)
        legacy["lstm_predict"] = time.perf_counter() - t0

        prism = Prism5GPredictor(prism_config())
        t0 = time.perf_counter()
        prism.fit(train, val)
        legacy["prism_train"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        prism_pred_legacy = _grad_mode_predict(prism, test)[:, : test.horizon]
        legacy["prism_predict"] = time.perf_counter() - t0

    # --- current path: cached synthesis, fused kernels, no_grad ---
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = TraceCache(cache_dir)
        build_subdataset(spec, cache=cache, **build_kwargs)  # prime (cold, parallel)
        t0 = time.perf_counter()
        dataset = build_subdataset(spec, cache=cache, **build_kwargs)
        current["synthesize"] = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)

    lstm = LSTMPredictor(lstm_config())
    t0 = time.perf_counter()
    lstm.fit(train, val)
    current["lstm_train"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    lstm_pred = lstm.predict(test)
    current["lstm_predict"] = time.perf_counter() - t0

    prism = Prism5GPredictor(prism_config())
    t0 = time.perf_counter()
    prism.fit(train, val)
    current["prism_train"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    prism_pred = prism.predict(test)
    current["prism_predict"] = time.perf_counter() - t0

    legacy["end_to_end"] = sum(legacy.values())
    current["end_to_end"] = sum(current.values())
    predictions_match = bool(
        np.allclose(lstm_pred, lstm_pred_legacy, rtol=1e-9, atol=1e-12)
        and np.allclose(prism_pred, prism_pred_legacy, rtol=1e-9, atol=1e-12)
    )

    record = {
        "workload": params,
        "legacy_s": {k: round(v, 4) for k, v in legacy.items()},
        "current_s": {k: round(v, 4) for k, v in current.items()},
        "speedup": round(legacy["end_to_end"] / current["end_to_end"], 2),
        "predictions_match": predictions_match,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }

    emit("=== PERF: legacy vs current wall-clock (seconds) ===")
    emit(f"{'phase':<14}{'legacy':>10}{'current':>10}{'speedup':>9}")
    for phase in ("synthesize", "lstm_train", "lstm_predict", "prism_train", "prism_predict", "end_to_end"):
        ratio = legacy[phase] / current[phase] if current[phase] > 0 else float("inf")
        emit(f"{phase:<14}{legacy[phase]:>10.3f}{current[phase]:>10.3f}{ratio:>8.1f}x")
    emit(f"predictions match: {predictions_match}")
    return record


def load_results() -> Dict:
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
            if results.get("schema") == RESULT_SCHEMA:
                return results
        except (ValueError, OSError):
            pass
    return {"schema": RESULT_SCHEMA}


def save_results(record: Dict) -> Dict:
    """Merge ``record`` into BENCH_perf.json; first run becomes baseline."""
    results = load_results()
    if "baseline" not in results:
        results["baseline"] = record
    results["latest"] = record
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def check_regression(results: Dict, emit=print) -> bool:
    """True when the latest run is within REGRESSION_FACTOR of baseline."""
    baseline = results.get("baseline")
    latest = results.get("latest")
    if not baseline or not latest:
        emit("no baseline recorded yet; nothing to check")
        return True
    base_total = baseline["current_s"]["end_to_end"]
    latest_total = latest["current_s"]["end_to_end"]
    ratio = latest_total / base_total if base_total > 0 else float("inf")
    ok = ratio <= REGRESSION_FACTOR
    emit(
        f"regression check: latest {latest_total:.3f}s vs baseline {base_total:.3f}s "
        f"({ratio:.2f}x, limit {REGRESSION_FACTOR:.1f}x) -> {'OK' if ok else 'FAIL'}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail when end-to-end time regresses >{REGRESSION_FACTOR}x vs the recorded baseline",
    )
    args = parser.parse_args(argv)
    record = run_workload()
    results = save_results(record)
    print(f"wrote {RESULT_PATH}")
    if args.check and not check_regression(results):
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (slow; excluded from the default tier-1 run)
try:
    import pytest

    from conftest import run_once

    @pytest.mark.slow
    def test_perf_training(benchmark, report):
        record = run_once(benchmark, lambda: run_workload(emit=report.emit))
        results = save_results(record)
        assert record["predictions_match"]
        assert check_regression(results, emit=report.emit)

except ImportError:  # pragma: no cover - script mode without pytest
    pass


if __name__ == "__main__":
    sys.exit(main())
