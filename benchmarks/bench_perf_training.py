"""PERF — wall-clock benchmark for the batched-path perf PRs.

Times a Table-4-style workload (synthesize one sub-dataset, train +
predict an LSTM and a Prism5G model) along two code paths:

* **legacy** — the loop-oracle path: serial uncached trace synthesis
  with the scalar per-cell radio update, op-by-op RNN composition
  (fused kernels off), per-carrier Prism5G loops (CC folding off), and
  graph-building grad-mode prediction;
* **current** — the shipped path: warm on-disk trace cache, vectorized
  radio update, fused sequence kernels, carrier-folded Prism5G, and
  ``no_grad`` prediction.

Both model phases train on the *same* dataset (built by the current
path) so ``predictions_match`` isolates the NN paths' bit-identity;
the simulator paths differ at ulp level (numpy vs math transcendentals)
and are compared per-field by the equivalence tests instead.  A
``stages_s`` section records per-stage micro-timings of each folded
path against its loop oracle.

Two sections cover the pluggable compute backends (``repro.backends``):
``backends_s`` times the LSTM training phase and a 300-step simulator
run once per registered backend that imports cleanly (``numpy`` always;
``numba`` when installed) plus a ``legacy`` row with fused kernels and
the vectorized radio off — the numpy-vs-numba delta is the JIT payoff,
the legacy row keeps the pre-dispatch baseline visible.
``arena_multitrace`` A/Bs the allocation-free training path: the same
seeded full-batch workload fit once as per-trace kernel calls with the
workspace arena off and once as a single stacked ``fit_traces`` pass
with the arena on.  Both paths see identical rows in identical order,
so their losses match step for step and the held-out predictions agree
to tolerance — the speedup isolates dispatch amortization + buffer
reuse, not a different training trajectory.

A ``campaign_city`` section times the sharded city-campaign engine
(``repro.ran.run_city_campaign``) on a small shared-deployment
workload, once as a single serial shard and once over 4 shards with 4
worker processes, recording UEs/sec, peak RSS and ``host_cpus`` — the
shard speedup is a core-count story, so the >2x target only applies on
hosts with 4+ cores.

Every phase is timed best-of-3 (training is seeded, so repeats do
identical work): single-shot wall clocks on shared hosts are dominated
by scheduler noise — the same code has measured 2-3x apart run to run.
Results (per-phase seconds, end-to-end totals, speedup) go to
``BENCH_perf.json`` at the repo root.  The first run records itself as
the regression baseline; later runs update ``latest`` only.

Run as a script (``scripts/perf_smoke.sh`` does this)::

    PYTHONPATH=src python benchmarks/bench_perf_training.py [--check] [--obs-check]

``--check`` exits non-zero when the current end-to-end time regresses
by more than 2x against the recorded baseline.  ``--obs-check`` exits
non-zero when observability slows a micro-workload by more than 5%
over the disabled path — measured twice, once in ``trace`` mode with
the sampler off and once in ``metrics`` mode with 25 Hz continuous
telemetry (``obs_sample_hz``), so both the span path and the sampling
thread stay inside the budget.  Under pytest the same workload runs as
a ``slow``-marked benchmark test.

All wall clocks come from ``repro.obs`` stopwatch spans
(``obs.span(..., force=True)``), so running the bench under
``REPRO_OBS=trace`` additionally records every phase/stage on the span
timeline — the BENCH numbers and the Chrome trace share one clock.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"
RESULT_SCHEMA = "bench-perf-v1"
REGRESSION_FACTOR = 2.0
OBS_OVERHEAD_LIMIT = 1.05

#: sample rate used by the sampling-mode overhead gate — well above the
#: 1-2 Hz production telemetry rates, so passing here leaves headroom.
OBS_SAMPLE_CHECK_HZ = 25.0


def _workload_params() -> Dict:
    full = os.environ.get("REPRO_SCALE") == "full"
    return {
        "scale": "full" if full else "fast",
        "operator": "OpX",
        "mobility": "walking",
        "timescale": "long",
        "n_traces": 10 if full else 4,
        "samples_per_trace": 400 if full else 200,
        "hidden": 32 if full else 24,
        "lstm_epochs": 12 if full else 6,
        "prism_epochs": 8 if full else 4,
    }


def _grad_mode_predict(predictor, dataset) -> np.ndarray:
    """Emulate the pre-PR prediction loop: full graph construction."""
    trainer = predictor.trainer
    x = predictor._packed(dataset)
    outputs = []
    for start in range(0, len(x), trainer.batch_size):
        pred = trainer.forward_fn(trainer.model, x[start : start + trainer.batch_size])
        outputs.append(np.asarray(pred.numpy(), dtype=np.float64))
    return np.concatenate(outputs, axis=0)


def _stage_timings(dataset, params) -> Dict[str, float]:
    """Micro-timings of each folded path against its loop oracle.

    Times one forward+backward of the carrier-folded Prism5G vs the
    per-CC loop, one fused decoder rollout vs the op-by-op loop, and one
    vectorized radio step vs the scalar per-cell loop.
    """
    from repro import obs
    from repro.core.prism5g import Prism5G, batched_cc, pack_inputs
    from repro.nn import Tensor
    from repro.ran.simulator import TraceSimulator, vectorized_radio

    stages: Dict[str, float] = {}

    def best_of(name, fn, repeat=7) -> float:
        # best-of-N: single-shot timings on shared hosts are dominated
        # by scheduler noise (observed 2-3x spikes on identical code).
        # force=True gives a stopwatch span even with obs off; in trace
        # mode every repeat also lands on the span timeline.
        times = []
        for _ in range(repeat):
            with obs.span(f"bench.stage.{name}", force=True) as sp:
                fn()
            times.append(sp.duration_s)
        return min(times)

    windows = dataset.windows
    packed = pack_inputs(windows.x, windows.mask, windows.y_hist)
    model = Prism5G(
        n_ccs=windows.n_ccs, n_features=windows.x.shape[3],
        horizon=windows.horizon, hidden=params["hidden"],
    )

    # one training step at the trainer's batch size — the shape
    # prism_train actually runs; folding wins by collapsing C
    # per-carrier kernel calls into one C-times-taller call
    batch = packed[: min(128, len(packed))]

    def fwd_bwd() -> None:
        loss = (model(Tensor(batch)) ** 2).mean()
        model.zero_grad()
        loss.backward()

    with batched_cc(False):
        stages["prism_fwd_bwd_loop"] = best_of("prism_fwd_bwd_loop", fwd_bwd)
    with batched_cc(True):
        stages["prism_fwd_bwd_folded"] = best_of("prism_fwd_bwd_folded", fwd_bwd)

    # decoder rollout over every (sample, carrier) state: the loop
    # oracle is the op-by-op step loop; the fused path is exactly what
    # _forward_folded ships — per-carrier lstm_decoder_seq calls so the
    # step arrays stay L2-resident (see _FOLD_CHUNK_ROWS)
    n = len(packed)
    h0 = Tensor(np.zeros((n * windows.n_ccs, params["hidden"])))
    h0_parts = [Tensor(np.zeros((n, params["hidden"]))) for _ in range(windows.n_ccs)]
    stages["decoder_rollout_loop"] = best_of("decoder_rollout_loop", lambda: model._decode_loop(h0))
    stages["decoder_rollout_fused"] = best_of(
        "decoder_rollout_fused", lambda: [model._decode(part) for part in h0_parts]
    )

    def sim_steps(vec: bool) -> None:
        with vectorized_radio(vec):
            sim = TraceSimulator(operator=params["operator"], seed=11, dt_s=0.1)
            sim.run(30.0)

    stages["sim_300_steps_loop"] = best_of("sim_300_steps_loop", lambda: sim_steps(False), repeat=5)
    stages["sim_300_steps_vec"] = best_of("sim_300_steps_vec", lambda: sim_steps(True), repeat=5)
    return stages


def _backend_stage_timings(params, fit_lstm) -> Dict[str, Dict[str, float]]:
    """Per-backend wall clocks for the LSTM training phase and a 300-step
    simulator run: one row per registered backend that imports cleanly
    (``numpy`` always, ``numba`` when installed), plus a ``legacy`` row
    timed with fused kernels / the vectorized radio off.  CI's
    optional-deps job reads the numpy-vs-numba delta from here.
    """
    from repro import backends, obs, runtime
    from repro.nn.modules import fused_kernels
    from repro.ran.simulator import TraceSimulator, vectorized_radio

    def best_of(name, fn, repeat=3) -> float:
        times = []
        for _ in range(repeat):
            with obs.span(f"bench.backend.{name}", force=True) as sp:
                fn()
            times.append(sp.duration_s)
        return min(times)

    def sim_run() -> None:
        sim = TraceSimulator(operator=params["operator"], seed=11, dt_s=0.1)
        sim.run(30.0)

    table: Dict[str, Dict[str, float]] = {}
    with fused_kernels(False), vectorized_radio(False):
        table["legacy"] = {
            "lstm_train": best_of("legacy.lstm_train", fit_lstm),
            "sim_300_steps": best_of("legacy.sim_300_steps", sim_run),
        }
    for name in backends.available_backends():
        with runtime.use(backend=name):
            # warm the JIT cache outside the timed region so numba rows
            # report steady-state kernels, not first-call compilation
            sim_run()
            table[name] = {
                "lstm_train": best_of(f"{name}.lstm_train", fit_lstm),
                "sim_300_steps": best_of(f"{name}.sim_300_steps", sim_run),
            }
    return table


def _arena_multitrace_timings(params) -> Dict[str, object]:
    """A/B the allocation-free multi-trace training path on numpy.

    Both arms run the *same* seeded full-batch workload — identical rows
    in identical order per optimizer step — so the trained models agree
    to tolerance and the timing delta isolates the mechanics:

    * **per_trace_split** — arena off; every batch forward runs one
      kernel call per trace (N small ``(B, T, F)`` passes concatenated),
      the pre-``fit_traces`` shape of many-small-traces training;
    * **stacked_arena** — arena on; :meth:`Trainer.fit_traces` stacks
      the traces so each fused kernel sweeps one ``(N*B, T, F)`` batch
      and gate/activation scratch is recycled step over step.
    """
    from repro import obs, runtime
    from repro.nn.modules import LSTM, Linear, Module
    from repro.nn.tensor import Tensor, concat
    from repro.nn.training import Trainer

    n_traces, per_trace, time_steps, features = 6, 40, 20, 10
    hidden, epochs = params["hidden"], 8

    class _Head(Module):
        def __init__(self) -> None:
            super().__init__()
            self.rnn = LSTM(features, hidden, rng=np.random.default_rng(1))
            self.out = Linear(hidden, 1, rng=np.random.default_rng(2))

        def forward(self, x):
            out, _ = self.rnn(x)
            return self.out(out[:, -1, :])

    rng = np.random.default_rng(3)
    traces = [
        (rng.standard_normal((per_trace, time_steps, features)),
         rng.standard_normal((per_trace, 1)))
        for _ in range(n_traces)
    ]
    x_all = np.concatenate([x for x, _ in traces])
    y_all = np.concatenate([y for _, y in traces])
    x_test = rng.standard_normal((64, time_steps, features))

    def split_forward(model, xb):
        parts = [model(Tensor(xb[s : s + per_trace])) for s in range(0, len(xb), per_trace)]
        return concat(parts, axis=0)

    def make_trainer(split: bool) -> Trainer:
        return Trainer(
            _Head(), lr=0.01, batch_size=n_traces * per_trace,
            max_epochs=epochs, patience=epochs,
            forward_fn=split_forward if split else None, seed=0,
        )

    def fit_split() -> Trainer:
        trainer = make_trainer(split=True)
        with runtime.use(arena=False):
            trainer.fit(x_all, y_all)
        return trainer

    def fit_stacked() -> Trainer:
        trainer = make_trainer(split=False)
        with runtime.use(arena=True):
            trainer.fit_traces(traces)
        return trainer

    def best_of(name, fn, repeat=3):
        best, result = float("inf"), None
        for _ in range(repeat):
            with obs.span(f"bench.arena.{name}", force=True) as sp:
                result = fn()
            best = min(best, sp.duration_s)
        return best, result

    split_s, split_trainer = best_of("per_trace_split", fit_split)
    stacked_s, stacked_trainer = best_of("stacked_arena", fit_stacked)
    match = bool(
        np.allclose(
            split_trainer.predict(x_test), stacked_trainer.predict(x_test),
            rtol=1e-9, atol=1e-12,
        )
    )
    return {
        "n_traces": n_traces,
        "windows_per_trace": per_trace,
        "epochs": epochs,
        "per_trace_split_s": round(split_s, 4),
        "stacked_arena_s": round(stacked_s, 4),
        "speedup": round(split_s / stacked_s, 2) if stacked_s > 0 else float("inf"),
        "predictions_match": match,
    }


def _campaign_city_timings(params) -> Dict[str, object]:
    """UEs/sec for the sharded city-campaign engine, 1 vs 4 shards.

    Runs the same small shared-deployment campaign (one operator/scenario
    group, SoA cohort stepping, streaming accumulators) twice: once as a
    single serial shard and once split over 4 shards with 4 worker
    processes requested.  Each row records wall seconds, UEs/sec and the
    peak RSS seen by the parent + reaped children.  ``host_cpus`` is
    recorded alongside because the shard speedup is a core-count story:
    on a single-core runner the 4-shard row measures pure sharding
    overhead (expect ~1x or slightly below), while the >2x target only
    applies where ``host_cpus >= 4``.
    """
    from repro.ran import CityCampaignConfig, run_city_campaign

    full = params["scale"] == "full"
    ues = 1024 if full else 256

    def run_once(shards: int, processes: int) -> Dict[str, object]:
        config = CityCampaignConfig(
            operators=("OpZ",),
            scenarios=("urban",),
            rats=("5G",),
            ues=ues,
            cells=12,
            shards=shards,
            cohort=64,
            duration_s=4.0,
            dt_s=1.0,
            seed=9,
        )
        state = tempfile.mkdtemp(prefix="repro-bench-campaign-")
        try:
            result = run_city_campaign(config, state_dir=state, processes=processes)
        finally:
            shutil.rmtree(state, ignore_errors=True)
        return {
            "shards": shards,
            "processes": processes,
            "wall_s": round(result.wall_s, 4),
            "ues_per_sec": round(result.ues_per_sec, 1),
            "peak_rss_mb": round(result.peak_rss_mb, 1),
        }

    serial = run_once(shards=1, processes=1)
    sharded = run_once(shards=4, processes=4)
    speedup = (
        sharded["ues_per_sec"] / serial["ues_per_sec"]
        if serial["ues_per_sec"] > 0
        else float("inf")
    )
    return {
        "ues": ues,
        "host_cpus": os.cpu_count() or 1,
        "serial": serial,
        "sharded": sharded,
        "speedup": round(speedup, 2),
    }


def _tune_allocator() -> None:
    """Raise glibc's mmap threshold so multi-MB activation buffers are
    recycled from the heap instead of being mmap'd and page-faulted anew
    on every training step.  Linux-only, best effort; results are
    bit-identical either way — this only changes where buffers live.
    """
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.mallopt(-3, 512 * 1024 * 1024)  # M_MMAP_THRESHOLD
    except (OSError, AttributeError):  # pragma: no cover - non-glibc hosts
        pass


def run_workload(emit=print) -> Dict:
    """Time the legacy and current paths; return the result record."""
    from repro import obs
    from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor
    from repro.core.prism5g import batched_cc
    from repro.data import SubDatasetSpec, TraceCache, build_subdataset, random_split
    from repro.nn.modules import fused_kernels
    from repro.ran.simulator import vectorized_radio

    _tune_allocator()

    params = _workload_params()
    spec = SubDatasetSpec(params["operator"], params["mobility"], params["timescale"])
    build_kwargs = dict(
        n_traces=params["n_traces"], samples_per_trace=params["samples_per_trace"]
    )

    def lstm_config() -> DeepConfig:
        return DeepConfig(
            hidden=params["hidden"], max_epochs=params["lstm_epochs"],
            patience=params["lstm_epochs"],
        )

    def prism_config() -> DeepConfig:
        return DeepConfig(
            hidden=params["hidden"], max_epochs=params["prism_epochs"],
            patience=params["prism_epochs"],
        )

    legacy: Dict[str, float] = {}
    current: Dict[str, float] = {}

    def timed(name, fn, repeat: int = 3):
        """Best-of-N wall clock (shared hosts show 2-3x scheduler spikes).

        Training is seeded and deterministic, so every repeat does
        identical work and returns an identical result.  Timed through
        an ``obs`` stopwatch span so trace mode sees each phase repeat.
        """
        best, result = float("inf"), None
        for _ in range(repeat):
            with obs.span(f"bench.{name}", force=True) as sp:
                result = fn()
            best = min(best, sp.duration_s)
        return best, result

    # --- legacy synthesis: serial, uncached, scalar per-cell radio ---
    with vectorized_radio(False):
        legacy["synthesize"], _ = timed(
            "legacy.synthesize",
            lambda: build_subdataset(spec, cache=None, processes=1, **build_kwargs),
        )

    # --- current synthesis: warm on-disk cache, vectorized radio ---
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = TraceCache(cache_dir)
        build_subdataset(spec, cache=cache, **build_kwargs)  # prime (cold, parallel)
        current["synthesize"], dataset = timed(
            "current.synthesize",
            lambda: build_subdataset(spec, cache=cache, **build_kwargs),
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    # both model phases train on this dataset so predictions_match
    # isolates the NN paths (bit-identical by construction)
    train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)

    def fit_lstm():
        predictor = LSTMPredictor(lstm_config())
        predictor.fit(train, val)
        return predictor

    def fit_prism():
        predictor = Prism5GPredictor(prism_config())
        predictor.fit(train, val)
        return predictor

    # --- legacy models: op-by-op kernels, per-CC loops, grad-mode ---
    with fused_kernels(False), batched_cc(False):
        legacy["lstm_train"], lstm = timed("legacy.lstm_train", fit_lstm)
        legacy["lstm_predict"], lstm_pred_legacy = timed(
            "legacy.lstm_predict", lambda: _grad_mode_predict(lstm, test)
        )
        legacy["prism_train"], prism = timed("legacy.prism_train", fit_prism)
        legacy["prism_predict"], prism_pred_legacy = timed(
            "legacy.prism_predict",
            lambda: _grad_mode_predict(prism, test)[:, : test.horizon],
        )

    # --- current models: fused kernels, CC folding, no_grad predict ---
    current["lstm_train"], lstm = timed("current.lstm_train", fit_lstm)
    current["lstm_predict"], lstm_pred = timed("current.lstm_predict", lambda: lstm.predict(test))
    current["prism_train"], prism = timed("current.prism_train", fit_prism)
    current["prism_predict"], prism_pred = timed("current.prism_predict", lambda: prism.predict(test))

    legacy["end_to_end"] = sum(legacy.values())
    current["end_to_end"] = sum(current.values())
    predictions_match = bool(
        np.allclose(lstm_pred, lstm_pred_legacy, rtol=1e-9, atol=1e-12)
        and np.allclose(prism_pred, prism_pred_legacy, rtol=1e-9, atol=1e-12)
    )
    stages = _stage_timings(dataset, params)
    backend_stages = _backend_stage_timings(params, fit_lstm)
    arena_multitrace = _arena_multitrace_timings(params)
    campaign_city = _campaign_city_timings(params)

    from repro import runtime

    record = {
        "workload": {**params, "backend": runtime.backend_name()},
        "legacy_s": {k: round(v, 4) for k, v in legacy.items()},
        "current_s": {k: round(v, 4) for k, v in current.items()},
        "stages_s": {k: round(v, 4) for k, v in stages.items()},
        "backends_s": {
            name: {k: round(v, 4) for k, v in row.items()}
            for name, row in backend_stages.items()
        },
        "arena_multitrace": arena_multitrace,
        "campaign_city": campaign_city,
        "speedup": round(legacy["end_to_end"] / current["end_to_end"], 2),
        "predictions_match": predictions_match,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }

    emit("=== PERF: legacy vs current wall-clock (seconds) ===")
    emit(f"{'phase':<14}{'legacy':>10}{'current':>10}{'speedup':>9}")
    for phase in ("synthesize", "lstm_train", "lstm_predict", "prism_train", "prism_predict", "end_to_end"):
        ratio = legacy[phase] / current[phase] if current[phase] > 0 else float("inf")
        emit(f"{phase:<14}{legacy[phase]:>10.3f}{current[phase]:>10.3f}{ratio:>8.1f}x")
    emit(f"predictions match: {predictions_match}")
    emit("--- per-stage folded vs loop (seconds) ---")
    for loop_key, fold_key in (
        ("prism_fwd_bwd_loop", "prism_fwd_bwd_folded"),
        ("decoder_rollout_loop", "decoder_rollout_fused"),
        ("sim_300_steps_loop", "sim_300_steps_vec"),
    ):
        ratio = stages[loop_key] / stages[fold_key] if stages[fold_key] > 0 else float("inf")
        emit(f"{fold_key:<24}{stages[loop_key]:>10.4f}{stages[fold_key]:>10.4f}{ratio:>8.1f}x")
    emit("--- per-backend stage timings (seconds) ---")
    emit(f"{'backend':<10}{'lstm_train':>12}{'sim_300_steps':>15}")
    for name, row in record["backends_s"].items():
        emit(f"{name:<10}{row['lstm_train']:>12.4f}{row['sim_300_steps']:>15.4f}")
    amt = record["arena_multitrace"]
    emit(
        f"arena+multi-trace: per-trace split {amt['per_trace_split_s']:.4f}s vs "
        f"stacked+arena {amt['stacked_arena_s']:.4f}s ({amt['speedup']:.2f}x), "
        f"predictions match: {amt['predictions_match']}"
    )
    cc = record["campaign_city"]
    emit(
        f"city campaign ({cc['ues']} UEs, {cc['host_cpus']} cpus): "
        f"1 shard {cc['serial']['ues_per_sec']:.0f} UEs/s vs "
        f"4 shards {cc['sharded']['ues_per_sec']:.0f} UEs/s ({cc['speedup']:.2f}x), "
        f"peak RSS {max(cc['serial']['peak_rss_mb'], cc['sharded']['peak_rss_mb']):.0f} MB"
    )
    obs.write_manifest(
        kind="bench",
        config=params,
        seed=0,
        extra={
            "speedup": record["speedup"],
            "predictions_match": predictions_match,
            "legacy_s": record["legacy_s"],
            "current_s": record["current_s"],
            "stages_s": record["stages_s"],
            "backends_s": record["backends_s"],
            "arena_multitrace": record["arena_multitrace"],
            "campaign_city": record["campaign_city"],
        },
    )
    obs.flush()
    return record


def check_obs_overhead(emit=print, attempts: int = 3, sampling: bool = False) -> bool:
    """True when observability costs <= 5% on a hot workload.

    Times a micro-workload (one fine-grained simulator run + a short
    Prism5G fit — the paths carrying per-step counters and per-epoch
    spans) with observability off and on, interleaved pairwise.  The
    "on" state is ``trace`` mode by default; with ``sampling=True`` it
    is instead ``metrics`` mode with the continuous-telemetry sampler
    running at ``OBS_SAMPLE_CHECK_HZ`` (the ``sample_window`` regions
    inside ``TraceSimulator.run`` and ``Trainer.fit`` start/stop the
    daemon thread exactly as production runs do).  Guards the
    "disabled path is a near-no-op, enabled path stays cheap" contract
    from DESIGN.md.

    A failing measurement is retried (``attempts`` total): scheduler
    spikes on shared hosts inflate a single measurement far beyond 5%,
    while a genuine regression fails every attempt.
    """
    label = "sampling" if sampling else "trace"
    for attempt in range(attempts):
        if _measure_obs_overhead(emit, sampling=sampling):
            return True
        if attempt < attempts - 1:
            emit(f"obs {label} overhead attempt {attempt + 1}/{attempts} failed; re-measuring")
    return False


def _measure_obs_overhead(emit, sampling: bool = False) -> bool:
    from repro import obs, runtime
    from repro.core import DeepConfig, Prism5GPredictor
    from repro.data import SubDatasetSpec, build_subdataset, random_split
    from repro.ran.simulator import TraceSimulator

    params = _workload_params()
    spec = SubDatasetSpec(params["operator"], params["mobility"], params["timescale"])
    dataset = build_subdataset(spec, cache=None, processes=1, n_traces=2, samples_per_trace=120)
    train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
    # the workload must be long enough that fixed per-run costs (one
    # manifest write at the end of fit, ~2ms) stay well inside the 5%
    # budget; per-step/per-epoch instrumentation is what's being gated
    config = DeepConfig(hidden=16, max_epochs=4, patience=4)

    def work() -> None:
        sim = TraceSimulator(operator=params["operator"], seed=7, dt_s=0.1)
        sim.run(30.0)  # 300 steps: the per-step instrumented hot loop
        Prism5GPredictor(config).fit(train, val)

    label = "sampling" if sampling else "trace"
    on_mode = obs.MODE_METRICS if sampling else obs.MODE_TRACE
    on_hz = OBS_SAMPLE_CHECK_HZ if sampling else 0

    spill_dir = tempfile.mkdtemp(prefix="repro-obs-check-")
    previous_hz = runtime.flag("obs_sample_hz")
    try:
        obs.configure(mode=obs.MODE_OFF)
        runtime.configure(obs_sample_hz=0)
        work()  # warmup (allocator, code paths)
        # interleave off/trace repeats and compare *pairwise*: the
        # workload is ~150ms, and host drift (frequency scaling, cache
        # state, GC pauses) over a block of repeats is larger than the
        # overhead being measured — an adjacent off/on pair sees the
        # same host state, so per-pair ratios isolate the obs cost.
        # gc.collect() before each timed run keeps collection pauses
        # (triggered by the trace path's extra allocations) out of the
        # wall clocks.
        import gc

        pairs = []
        for _ in range(9):
            obs.configure(mode=obs.MODE_OFF)
            runtime.configure(obs_sample_hz=0)
            gc.collect()
            t0 = time.perf_counter()
            work()
            off_t = time.perf_counter() - t0
            obs.configure(mode=on_mode, directory=spill_dir)
            runtime.configure(obs_sample_hz=on_hz)
            gc.collect()
            t0 = time.perf_counter()
            work()
            pairs.append((off_t, time.perf_counter() - t0))
    finally:
        obs.configure()  # back to env-driven mode
        runtime.configure(obs_sample_hz=previous_hz)
        obs.reset()
        shutil.rmtree(spill_dir, ignore_errors=True)
    ratios = sorted(on_t / off_t for off_t, on_t in pairs if off_t > 0)
    median_ratio = ratios[len(ratios) // 2] if ratios else float("inf")
    off_s = min(off_t for off_t, _ in pairs)
    on_s = min(on_t for _, on_t in pairs)
    min_ratio = on_s / off_s if off_s > 0 else float("inf")
    # noise only inflates each estimator, so take the smaller of the
    # two: a real regression shifts the whole distribution and trips
    # both, while a stray slow window trips at most one
    ratio = min(median_ratio, min_ratio)
    ok = ratio <= OBS_OVERHEAD_LIMIT
    emit(
        f"obs overhead check: off {off_s:.3f}s vs {label} {on_s:.3f}s "
        f"({ratio:.3f}x = min(median-pairwise {median_ratio:.3f}, best-of {min_ratio:.3f}), "
        f"limit {OBS_OVERHEAD_LIMIT:.2f}x) -> {'OK' if ok else 'FAIL'}"
    )
    return ok


def load_results() -> Dict:
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
            if results.get("schema") == RESULT_SCHEMA:
                return results
        except (ValueError, OSError):
            pass
    return {"schema": RESULT_SCHEMA}


def save_results(record: Dict) -> Dict:
    """Merge ``record`` into BENCH_perf.json; first run becomes baseline."""
    results = load_results()
    if "baseline" not in results:
        results["baseline"] = record
    results["latest"] = record
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def check_regression(results: Dict, emit=print) -> bool:
    """True when the latest run is within REGRESSION_FACTOR of baseline."""
    baseline = results.get("baseline")
    latest = results.get("latest")
    if not baseline or not latest:
        emit("no baseline recorded yet; nothing to check")
        return True
    base_total = baseline["current_s"]["end_to_end"]
    latest_total = latest["current_s"]["end_to_end"]
    ratio = latest_total / base_total if base_total > 0 else float("inf")
    ok = ratio <= REGRESSION_FACTOR
    emit(
        f"regression check: latest {latest_total:.3f}s vs baseline {base_total:.3f}s "
        f"({ratio:.2f}x, limit {REGRESSION_FACTOR:.1f}x) -> {'OK' if ok else 'FAIL'}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail when end-to-end time regresses >{REGRESSION_FACTOR}x vs the recorded baseline",
    )
    parser.add_argument(
        "--obs-check", action="store_true",
        help=(
            "fail when trace-mode or sampling-mode observability "
            f"overhead exceeds {OBS_OVERHEAD_LIMIT:.2f}x"
        ),
    )
    args = parser.parse_args(argv)
    record = run_workload()
    results = save_results(record)
    print(f"wrote {RESULT_PATH}")
    if args.check and not check_regression(results):
        return 1
    if args.obs_check and not check_obs_overhead():
        return 1
    if args.obs_check and not check_obs_overhead(sampling=True):
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (slow; excluded from the default tier-1 run)
try:
    import pytest

    from conftest import run_once

    @pytest.mark.slow
    def test_perf_training(benchmark, report):
        record = run_once(benchmark, lambda: run_workload(emit=report.emit))
        results = save_results(record)
        assert record["predictions_match"]
        assert record["arena_multitrace"]["predictions_match"]
        assert check_regression(results, emit=report.emit)

except ImportError:  # pragma: no cover - script mode without pytest
    pass


if __name__ == "__main__":
    sys.exit(main())
