#!/usr/bin/env python
"""UHD (16K) video streaming with MPC over 5G CA traces (paper §7).

Streams the paper's 16K quality ladder [1.5, 2.5, 40.71, 152.66, 280,
585] Mbps through the MPC ABR controller, swapping its bandwidth
forecaster between the stock harmonic mean, a trained Prism5G, and a
clairvoyant oracle — reproducing the shape of Figs 20-21: Prism5G
keeps the bitrate while cutting stalls, especially the tail.

Run:  python examples/abr_video_streaming.py
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import (
    ABRConfig,
    MPCPlayer,
    harmonic_forecaster,
    oracle_forecaster_factory,
    predictor_forecaster,
    stall_tail_improvements,
)
from repro.core import DeepConfig, Prism5GPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.ran import TraceSimulator


def main() -> None:
    # --- train a 1 s-scale Prism5G (10 s horizon, like the paper) -----
    spec = SubDatasetSpec("OpZ", "driving", "long")
    print("training Prism5G on the 1 s OpZ driving dataset ...")
    dataset = build_subdataset(spec, n_traces=5, samples_per_trace=200, seed=2)
    train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
    prism = Prism5GPredictor(DeepConfig(hidden=24, max_epochs=40, patience=12))
    prism.fit(train, val)

    # --- stream over fresh CA traces ----------------------------------
    config = ABRConfig(lookahead=3, chunk_s=2.0)
    player = MPCPlayer(config)
    results = {"harmonic": [], "Prism5G": [], "oracle": []}
    for seed in range(60, 66):
        trace = TraceSimulator("OpZ", scenario="urban", mobility="driving", dt_s=1.0, seed=seed).run(240.0)
        tput = trace.throughput_series()
        forecasters = {
            "harmonic": harmonic_forecaster,
            "Prism5G": predictor_forecaster(prism, trace, dataset, config.chunk_s),
            "oracle": oracle_forecaster_factory(tput, trace.dt_s, config.chunk_s),
        }
        for name, forecaster in forecasters.items():
            results[name].append(player.run(tput, trace.dt_s, forecaster))

    rows = []
    for name, sessions in results.items():
        rows.append(
            [
                f"MPC+{name}",
                float(np.mean([s.avg_quality for s in sessions])),
                float(np.mean([s.stall_time_s for s in sessions])),
                float(np.mean([s.quality_switches for s in sessions])),
            ]
        )
    print()
    print(
        format_table(
            ["Policy", "Avg bitrate (Mbps)", "Avg stall (s)", "Avg switches"],
            rows,
            float_fmt="{:.1f}",
            title="=== 16K streaming over 5G CA (paper Fig 20) ===",
        )
    )

    # --- stall-time tail (paper Fig 21) --------------------------------
    base = [s.stall_time_s for s in results["harmonic"]]
    ours = [s.stall_time_s for s in results["Prism5G"]]
    gains = stall_tail_improvements(base, ours, percentiles=(99.0, 95.0, 90.0))
    print("\n=== Stall-time tail reduction, MPC+Prism5G vs MPC+harmonic (Fig 21) ===")
    for pct, gain in gains.items():
        print(f"  p{pct:.0f}: {gain:+.1f} s")


if __name__ == "__main__":
    main()
