#!/usr/bin/env python
"""ViVo XR streaming over 5G CA: the paper's §3.3 + §7 use case.

Streams ViVo volumetric frames (150 ms deadline) over simulated 5G
traces in the paper's two regimes:

* case 1 — a single 5G channel without CA, standard ViVo (<= 375 Mbps);
* case 2 — up to 4 aggregated CCs, *scaled-up* ViVo (<= 750 Mbps);

comparing the stock past-mean bandwidth estimator, a trained Prism5G
estimator, and the *ideal* (future-knowing) ViVo — reproducing the
shape of Fig 8 (CA hurts naive adaptation) and Fig 19 (Prism5G is
near-optimal).

Run:  python examples/vivo_xr_streaming.py
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import ViVoConfig, ViVoSimulator, predicted_bandwidth_series, relative_degradation
from repro.core import DeepConfig, Prism5GPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.ran import TraceSimulator


def build_traces(band_lock, max_ccs, n, seed0):
    traces = []
    for seed in range(seed0, seed0 + n):
        sim = TraceSimulator(
            "OpZ",
            scenario="urban",
            mobility="walking",
            dt_s=0.01,
            seed=seed,
            band_lock=band_lock,
            max_ccs_override=max_ccs,
        )
        traces.append(sim.run(6.0))
    return traces


def main() -> None:
    # train a fast-timescale Prism5G (10 ms scale, 100 ms horizon)
    spec = SubDatasetSpec("OpZ", "walking", "short")
    print("training Prism5G on the 10 ms OpZ walking dataset ...")
    dataset = build_subdataset(spec, n_traces=4, samples_per_trace=250, seed=2)
    train, val, _ = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
    prism = Prism5GPredictor(DeepConfig(hidden=24, max_epochs=30, patience=10))
    prism.fit(train, val)

    cases = [
        ("case 1: no CA (ViVo <= 375 Mbps)", ["n41@2500"], 1, 375.0),
        ("case 2: 4CC CA (scaled-up ViVo <= 750 Mbps)", None, 4, 750.0),
    ]
    for label, band_lock, max_ccs, max_bitrate in cases:
        traces = build_traces(band_lock, max_ccs, n=3, seed0=40)
        sim = ViVoSimulator(ViVoConfig(max_bitrate_mbps=max_bitrate))
        rows = []
        degr = {"stock": [], "Prism5G": []}
        for trace in traces:
            tput = trace.throughput_series()
            ideal = sim.run_ideal(tput, trace.dt_s)
            stock = sim.run_stock(tput, trace.dt_s)
            estimates = predicted_bandwidth_series(prism, trace, dataset)
            with_prism = sim.run(tput, trace.dt_s, estimates)
            for name, res in (("ideal", ideal), ("stock", stock), ("Prism5G", with_prism)):
                rows.append(
                    [f"trace{trace.seed}", name, res.avg_quality, res.stall_time_s * 1e3, res.n_stalls]
                )
            degr["stock"].append(relative_degradation(stock, ideal))
            degr["Prism5G"].append(relative_degradation(with_prism, ideal))
        print(f"\n=== {label} ===")
        print(
            format_table(
                ["Trace", "Estimator", "Avg quality lvl", "Stall (ms)", "#Stalls"],
                rows,
                float_fmt="{:.2f}",
            )
        )
        for name, values in degr.items():
            quality = np.mean([v["quality_drop_pct"] for v in values])
            stalls = np.mean([v["stall_increase_pct"] for v in values])
            print(f"{name:8s} vs ideal: quality -{quality:.1f}%, stall +{stalls:.0f}%")
    print(
        "\nExpected shape (paper Figs 8 & 19): degradation is worse under"
        "\n4CC CA for the stock estimator, while ViVo+Prism5G stays close"
        "\nto the ideal run."
    )


if __name__ == "__main__":
    main()
