#!/usr/bin/env python
"""Throughput prediction shoot-out: the paper's Table 4 in miniature.

Trains Prophet, LSTM, TCN, Lumos5G (Seq2Seq) and Prism5G on an OpZ
driving dataset and reports RMSE, then zooms into the CC-transition
zones (the paper's Z1/Z2 analysis, Figs 17-18) to show where
CA-awareness pays off.

Run:  python examples/throughput_prediction.py          (fast, small)
      REPRO_SCALE=full python examples/throughput_prediction.py
"""

import os

import numpy as np

from repro.analysis import format_table
from repro.core import DeepConfig, evaluate_predictors, make_default_predictors
from repro.data import SubDatasetSpec, build_subdataset, random_split


def main() -> None:
    full = os.environ.get("REPRO_SCALE") == "full"
    n_traces = 10 if full else 5
    samples = 400 if full else 200
    config = DeepConfig(hidden=32, max_epochs=120 if full else 50, patience=20 if full else 12)

    spec = SubDatasetSpec("OpZ", "driving", "long")
    print(f"building dataset {spec.name}: {n_traces} traces x {samples} samples ...")
    dataset = build_subdataset(spec, n_traces=n_traces, samples_per_trace=samples, seed=1)

    predictors = make_default_predictors(
        config, include=["Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"]
    )
    print(f"training {len(predictors)} predictors (this is the slow part) ...")
    result = evaluate_predictors(dataset, predictors, keep_predictions=True, dataset_name=spec.name)

    rows = [[name, rmse] for name, rmse in result.rmse.items()]
    print()
    print(format_table(["Predictor", "RMSE"], rows, title=f"=== {spec.name} (paper Table 4) ==="))
    print(f"Prism5G improvement over best baseline: {result.improvement_over_best_baseline():.1f}%")

    # ------------------------------------------------------------------
    # Transition-zone analysis (paper Figs 17-18): compare errors on
    # test windows whose history contains a CA event (mask change).
    # ------------------------------------------------------------------
    _, _, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
    mask = test.mask
    transition = np.any(np.abs(np.diff(mask, axis=1)) > 0, axis=(1, 2))
    print(
        f"\n=== Error at CC transitions ({transition.sum()} of {len(test)} test windows) ==="
    )
    rows = []
    for name, pred in result.predictions.items():
        err = (pred - test.y) ** 2
        rmse_stable = float(np.sqrt(err[~transition].mean())) if (~transition).any() else float("nan")
        rmse_trans = float(np.sqrt(err[transition].mean())) if transition.any() else float("nan")
        rows.append([name, rmse_stable, rmse_trans])
    print(format_table(["Predictor", "RMSE (stable)", "RMSE (transition)"], rows))
    print(
        "\nPrism5G's margin is widest on transition windows — the paper's"
        "\ncentral claim for CA-aware prediction (Z1/Z2 zones of Fig 18)."
    )


if __name__ == "__main__":
    main()
