#!/usr/bin/env python
"""Quickstart: simulate a 5G CA drive trace, inspect it, train Prism5G.

Walks the three layers of the library in ~a minute of compute:

1. ``repro.ran``  — synthesize a drive-test trace with carrier
   aggregation (the paper's measurement substrate);
2. ``repro.data`` — window it into ML training pairs;
3. ``repro.core`` — train the CA-aware Prism5G predictor and compare
   it against the statistics-only Prophet baseline.

Run:  python examples/quickstart.py [--quick]

``--quick`` shrinks every stage to a CI-smoke size (short trace, few
windows, few epochs) — same code path, ~seconds instead of a minute.
"""

import argparse

import numpy as np

from repro.analysis import format_table, transition_statistics
from repro.core import DeepConfig, Prism5GPredictor, ProphetPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split
from repro.ran import TraceSimulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI-smoke configuration"
    )
    args = parser.parse_args()
    # ------------------------------------------------------------------
    # 1. Simulate a 2-minute urban drive on OpZ (T-Mobile-like: up to
    #    4 aggregated FR1 carriers from n41/n25/n71).
    # ------------------------------------------------------------------
    sim = TraceSimulator(
        operator="OpZ",
        scenario="urban",
        mobility="driving",
        modem="X70",  # Galaxy S23-class: supports 4CC FR1
        dt_s=1.0,
        seed=7,
    )
    duration_s = 30.0 if args.quick else 120.0
    trace = sim.run(duration_s=duration_s)
    tput = trace.throughput_series()
    ccs = trace.cc_count_series()

    print(f"=== Simulated OpZ urban drive ({duration_s:.0f} s) ===")
    print(f"throughput: mean {tput.mean():7.1f} Mbps | peak {tput.max():7.1f} Mbps | std {tput.std():6.1f}")
    print(f"active CCs: min {ccs.min()} / max {ccs.max()}")
    stats = transition_statistics(trace)
    print(
        f"CA events : {stats.n_events} (every {stats.mean_interval_s:.1f} s on average), "
        f"mean throughput change {stats.mean_change_pct:.0f}% within 5 s windows"
    )
    print("sample RRC events:", [e for rec in trace.records for e in rec.events][:4])

    # ------------------------------------------------------------------
    # 2. Build a small ML dataset (paper Table 11 style) and split it
    #    0.5 / 0.2 / 0.3 like Appendix C.1.
    # ------------------------------------------------------------------
    spec = SubDatasetSpec("OpZ", "driving", "long")  # 1 s scale, 10 s horizon
    dataset = build_subdataset(
        spec,
        n_traces=2 if args.quick else 4,
        samples_per_trace=60 if args.quick else 150,
        seed=1,
    )
    train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=0)
    print(f"\n=== Dataset: {spec.name} ===")
    print(f"{len(dataset.windows)} windows of (history=10, horizon=10), {train.n_ccs} CC slots")

    # ------------------------------------------------------------------
    # 3. Train Prism5G and a baseline; report RMSE (normalized units).
    # ------------------------------------------------------------------
    if args.quick:
        config = DeepConfig(hidden=16, max_epochs=4, patience=4)
    else:
        config = DeepConfig(hidden=24, max_epochs=40, patience=12)
    prism = Prism5GPredictor(config)
    prism.fit(train, val)
    prophet = ProphetPredictor().fit(train)

    rows = [
        ["Prophet", prophet.evaluate(test)],
        ["Prism5G", prism.evaluate(test)],
    ]
    print()
    print(format_table(["Predictor", "RMSE (normalized)"], rows, title="=== Prediction accuracy ==="))

    # Per-carrier forecasts (what makes Prism5G explainable, Fig 33-34)
    per_cc = prism.predict_per_cc(test)
    print(f"\nper-CC forecast tensor: {per_cc.shape} (windows, CC slots, horizon)")
    print("done.")


if __name__ == "__main__":
    main()
