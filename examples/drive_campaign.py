#!/usr/bin/env python
"""Measurement campaign: map CA deployment across operators & scenarios.

Reproduces the paper's measurement-study workflow (§2-§3) on the
synthetic substrate: drive all three operators through urban, suburban
and highway scenarios, then report the Table 1/2-style statistics —
channels observed, CA combinations (ordered / unique), CA prevalence,
and peak throughput — plus a Fig 4-style spatial CC map.

Run:  python examples/drive_campaign.py [--quick]

``--quick`` shrinks the campaign to a CI-smoke size (one run per cell,
10 s traces) — same code path, ~seconds instead of minutes.
"""

import argparse

from repro.analysis import format_table
from repro.ran import CampaignConfig, cc_spatial_map, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI-smoke configuration"
    )
    args = parser.parse_args()
    config = CampaignConfig(
        operators=("OpX", "OpY", "OpZ"),
        scenarios=("urban", "suburban", "highway"),
        rats=("4G", "5G"),
        traces_per_cell=1 if args.quick else 2,
        duration_s=10.0 if args.quick else 60.0,
        seed=3,
    )
    print(
        f"running campaign: 3 operators x 3 scenarios x 2 RATs x "
        f"{config.traces_per_cell} runs ..."
    )
    result = run_campaign(config)
    print(f"collected {len(result.traces)} traces, {result.traces.total_duration_s() / 60:.0f} min total\n")

    # --- Table 2-style per-operator summary --------------------------
    rows = []
    for (operator, rat, scenario), stats in sorted(result.stats.items()):
        rows.append(
            [
                operator,
                rat,
                scenario,
                stats.unique_channels,
                f"{stats.ordered_combos}/{stats.unique_combos}",
                stats.max_ccs,
                f"{stats.ca_prevalence * 100:.0f}%",
                f"{stats.peak_tput_mbps:.0f}",
            ]
        )
    print(
        format_table(
            ["Oper.", "RAT", "Scenario", "#Ch", "Combos (ord/uniq)", "Max CCs", "CA preval.", "Peak Mbps"],
            rows,
            title="=== CA deployment statistics (paper Tables 1-2, Fig 25) ===",
        )
    )

    # --- Fig 25: 5G CA prevalence comparison -------------------------
    table = result.prevalence_table()
    print("\n=== 5G CA prevalence by operator (paper: OpX 24%, OpY 44%, OpZ 86%) ===")
    for operator, by_scenario in sorted(table.items()):
        avg = sum(by_scenario.values()) / len(by_scenario)
        detail = ", ".join(f"{s}: {v * 100:.0f}%" for s, v in sorted(by_scenario.items()))
        print(f"{operator}: avg {avg * 100:.0f}%  ({detail})")

    # --- Fig 4: spatial CC map for one OpZ urban drive ---------------
    opz_urban = result.traces.filter(operator="OpZ", scenario="urban", rat="5G")
    five_g = [t for t in opz_urban if any(r.n_active_ccs for r in t.records)]
    if five_g:
        grid = cc_spatial_map(five_g[0], grid_m=150.0)
        print("\n=== Spatial mean CC count on a 150 m grid (paper Fig 4) ===")
        for (gx, gy), mean_ccs in sorted(grid.items()):
            print(f"  cell ({gx:+d},{gy:+d}): {mean_ccs:.1f} CCs")

    # --- Top CA combinations ------------------------------------------
    print("\n=== Most frequent 5G CA combinations (paper Table 7) ===")
    for (operator, rat, scenario), stats in sorted(result.stats.items()):
        if rat != "5G" or scenario != "urban":
            continue
        for combo, count in stats.top_combos(3):
            print(f"  {operator}: {combo}  ({count} samples)")


if __name__ == "__main__":
    main()
