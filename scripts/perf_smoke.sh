#!/usr/bin/env bash
# Perf smoke check: run the fused-kernel/no-grad/cache benchmark and
# fail when the current path regresses >2x against the baseline stored
# in BENCH_perf.json (the first run records the baseline and passes),
# or when observability adds >5% overhead to a hot sim+train
# micro-workload (--obs-check runs the gate twice: trace mode with the
# sampler off, then metrics mode with 25 Hz continuous telemetry).
#
# The gate is pinned to the numpy compute backend so the smoke check
# stays dependency-light and comparable across hosts: numba timings are
# still *recorded* (the bench times every importable backend into
# backends_s) but never decide pass/fail.  CI's optional-deps job reads
# the numba rows from the uploaded BENCH_perf.json instead.
set -euo pipefail

cd "$(dirname "$0")/.."
REPRO_BACKEND=numpy PYTHONPATH=src python benchmarks/bench_perf_training.py --check --obs-check "$@"
