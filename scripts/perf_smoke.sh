#!/usr/bin/env bash
# Perf smoke check: run the fused-kernel/no-grad/cache benchmark and
# fail when the current path regresses >2x against the baseline stored
# in BENCH_perf.json (the first run records the baseline and passes),
# or when trace-mode observability adds >5% overhead to a hot
# sim+train micro-workload (--obs-check).
set -euo pipefail

cd "$(dirname "$0")/.."
PYTHONPATH=src python benchmarks/bench_perf_training.py --check --obs-check "$@"
