#!/usr/bin/env bash
# One-command static-analysis gate (mirrors the CI `static-analysis` job):
#
#   1. repro5g lint        - the repo's own per-file + whole-program
#                            invariant checks (RL001-RL012); re-runs are
#                            incremental (content-hash cache under
#                            ~/.cache/repro5g, REPRO_NO_CACHE=1 or
#                            --no-cache to bypass).  As a pre-commit
#                            hook, pass --changed-only to report only
#                            findings in files git considers modified
#                            (the whole tree is still analyzed, so the
#                            cross-file rules stay sound):
#
#                                scripts/lint.sh --changed-only
#   2. ruff check          - pyflakes/pycodestyle classes from pyproject.toml
#      ruff format --check - formatting drift on the lintkit subtree + tests
#   3. mypy                - strict on repro.runtime/pipeline/nn.serialization/
#                            lintkit, permissive baseline elsewhere
#
# ruff and mypy are optional-dev dependencies (pip install -e ".[dev]");
# when they are not installed locally the corresponding step is skipped
# with a notice so `repro5g lint` still gates offline environments.  CI
# always installs both, so the full gate runs there.
set -uo pipefail

cd "$(dirname "$0")/.."
status=0

echo "== repro5g lint =="
PYTHONPATH=src python -m repro.lintkit "$@" || status=1

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks scripts || status=1
    echo "== ruff format --check (lintkit + its tests) =="
    ruff format --check src/repro/lintkit tests/test_lintkit.py || status=1
else
    echo "== ruff not installed; skipping (pip install -e '.[dev]') =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=1
else
    echo "== mypy not installed; skipping (pip install -e '.[dev]') =="
fi

exit $status
